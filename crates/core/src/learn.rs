//! Online learned symbiosis prediction (ROADMAP item 3).
//!
//! The paper's ten predictors are fixed heuristics chosen once from Table 3.
//! This module closes the loop from the telemetry counter stream back into
//! scheduling decisions with two learned predictors:
//!
//! * [`RidgeRegressor`] — an online ridge/linear regressor over the same
//!   sample-phase counter condensates the fixed predictors read
//!   ([`ScheduleSample`]: IPC, conflict rates, DL1 hit rate, FP-queue/unit
//!   conflicts, mix diversity, IPC balance). It accumulates the normal
//!   equations (`XᵀX`, `Xᵀy`) incrementally in f64 and solves them lazily,
//!   so one training update is O(D²) and one prediction is O(D) after an
//!   O(D³) solve per dirty model. Exposed as
//!   [`crate::predictor::PredictorKind::Learned`].
//! * [`BanditState`] — a contextual bandit (epsilon-greedy or UCB1) over
//!   eleven arms: the ten paper predictors plus the learned model. Context
//!   is a coarse jobmix class histogram ([`context_of`]), so the bandit can
//!   learn that, say, `Fq` wins on FP-heavy mixes while `Dcache` wins on
//!   memory-bound ones. Per-arm pulls, mean reward, and regret are
//!   accounted per context and globally. Exposed as
//!   [`crate::predictor::PredictorKind::Bandit`].
//!
//! Determinism rules (the same contract as the rest of the engine):
//!
//! 1. All state is plain `f64`/`u64` updated in a fixed sequential order —
//!    no wall clock, no `HashMap` iteration, no platform-dependent math.
//! 2. The only randomness is epsilon-greedy exploration, drawn from an
//!    embedded [`SplitMix64`] whose state is part of the serialized model.
//! 3. Serialization round-trips exactly: `serde_json` prints `f64` via
//!    shortest-round-trip formatting, so a restored [`Learner`] continues
//!    byte-identically with the original.

use crate::predictor::PredictorKind;
use crate::sample::ScheduleSample;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workloads::Benchmark;

/// Feature-vector dimension (bias + 8 counter condensates).
pub const NUM_FEATURES: usize = 9;

/// Number of bandit arms: the ten paper predictors plus the learned model.
pub const NUM_ARMS: usize = PredictorKind::ALL.len() + 1;

/// The bandit's arms, in pull-accounting order: the paper's ten predictors
/// (Table 3 order) followed by [`PredictorKind::Learned`].
pub fn arms() -> [PredictorKind; NUM_ARMS] {
    let mut out = [PredictorKind::Learned; NUM_ARMS];
    out[..PredictorKind::ALL.len()].copy_from_slice(&PredictorKind::ALL);
    out
}

/// The feature vector of one sampled schedule. Percent-scaled counters are
/// divided by 100 so every feature is O(1) and the ridge penalty is
/// comparable across dimensions.
pub fn features(s: &ScheduleSample) -> [f64; NUM_FEATURES] {
    [
        1.0, // bias
        s.ipc,
        s.allconf / 100.0,
        s.dcache / 100.0,
        s.fq / 100.0,
        s.fp / 100.0,
        s.sum2 / 100.0,
        s.diversity,
        s.balance,
    ]
}

/// Which exploration policy the bandit runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BanditPolicy {
    /// With probability epsilon pick a uniform arm, otherwise the best
    /// empirical mean in the current context.
    EpsilonGreedy,
    /// Deterministic optimism: mean + `c·√(2·ln N / n)` per context.
    Ucb1,
}

impl BanditPolicy {
    /// Parses a policy name (`"epsilon-greedy"` / `"ucb1"`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "epsilon-greedy" | "epsilon" | "egreedy" => Some(BanditPolicy::EpsilonGreedy),
            "ucb1" | "ucb" => Some(BanditPolicy::Ucb1),
            _ => None,
        }
    }

    /// The lowercase policy name.
    pub fn name(&self) -> &'static str {
        match self {
            BanditPolicy::EpsilonGreedy => "epsilon-greedy",
            BanditPolicy::Ucb1 => "ucb1",
        }
    }
}

/// Configuration of the learned-prediction subsystem.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LearnConfig {
    /// Bandit exploration policy.
    pub policy: BanditPolicy,
    /// Exploration probability for epsilon-greedy.
    pub epsilon: f64,
    /// Exploration coefficient for UCB1.
    pub ucb_c: f64,
    /// Ridge penalty λ on the normal equations.
    pub lambda: f64,
    /// EWMA smoothing for the prediction-error gauge.
    pub ewma_alpha: f64,
    /// Training observations before the regressor's ranking is trusted;
    /// until then [`Learner::choose_learned`] falls back to the paper's
    /// best fixed predictor (`Score`).
    pub min_train: u64,
    /// Seed of the embedded exploration RNG.
    pub seed: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            policy: BanditPolicy::Ucb1,
            epsilon: 0.1,
            ucb_c: 0.5,
            lambda: 1.0,
            ewma_alpha: 0.1,
            min_train: 8,
            seed: 0x1ea4,
        }
    }
}

/// A tiny deterministic, serializable PRNG (Sebastiano Vigna's SplitMix64).
/// `rand::SmallRng` is not serializable, and the exploration stream must
/// survive a snapshot/restore byte-identically.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A draw in `[0, 1)` (53-bit mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Online ridge regression via incrementally updated normal equations.
///
/// [`observe`](Self::observe) folds one `(x, y)` pair into the `XᵀX` / `Xᵀy`
/// accumulators; [`weights`](Self::weights) solves `(XᵀX + λI)·w = Xᵀy` by
/// Gaussian elimination with partial pivoting on demand (a 9×9 solve, cheap
/// next to a sample phase). Only the accumulators carry state, so a restored
/// model re-solves to exactly the same weights.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegressor {
    /// Ridge penalty λ.
    lambda: f64,
    /// Training observations folded in.
    n: u64,
    /// Row-major `XᵀX` accumulator (`NUM_FEATURES²`).
    xtx: Vec<f64>,
    /// `Xᵀy` accumulator.
    xty: Vec<f64>,
    /// EWMA of |prediction − target| over prequential updates.
    err_ewma: f64,
    /// EWMA smoothing factor.
    ewma_alpha: f64,
}

impl RidgeRegressor {
    /// An empty model with ridge penalty `lambda`.
    pub fn new(lambda: f64, ewma_alpha: f64) -> Self {
        RidgeRegressor {
            lambda: lambda.max(1e-12),
            n: 0,
            xtx: vec![0.0; NUM_FEATURES * NUM_FEATURES],
            xty: vec![0.0; NUM_FEATURES],
            err_ewma: 0.0,
            ewma_alpha: ewma_alpha.clamp(1e-6, 1.0),
        }
    }

    /// Training observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// EWMA of the prequential absolute prediction error.
    pub fn err_ewma(&self) -> f64 {
        self.err_ewma
    }

    /// Folds one observation in (prequential: the error gauge is updated
    /// from the model *before* it sees the new pair).
    pub fn observe(&mut self, x: &[f64; NUM_FEATURES], y: f64) {
        if let Some(pred) = self.predict(x) {
            let err = (pred - y).abs();
            self.err_ewma = if self.n == 0 {
                err
            } else {
                self.err_ewma + self.ewma_alpha * (err - self.err_ewma)
            };
        }
        for i in 0..NUM_FEATURES {
            for j in 0..NUM_FEATURES {
                self.xtx[i * NUM_FEATURES + j] += x[i] * x[j];
            }
            self.xty[i] += x[i] * y;
        }
        self.n += 1;
    }

    /// The solved weights, or `None` before any observation (or on a
    /// singular system, which λ > 0 prevents in practice).
    pub fn weights(&self) -> Option<Vec<f64>> {
        if self.n == 0 {
            return None;
        }
        solve_ridge(&self.xtx, &self.xty, self.lambda)
    }

    /// Predicts `y` for `x`, or `None` while the model is empty.
    pub fn predict(&self, x: &[f64; NUM_FEATURES]) -> Option<f64> {
        let w = self.weights()?;
        Some(x.iter().zip(&w).map(|(a, b)| a * b).sum())
    }
}

/// Solves `(A + λI)·w = b` by Gaussian elimination with partial pivoting.
/// Returns `None` when the pivoted system is numerically singular.
fn solve_ridge(a: &[f64], b: &[f64], lambda: f64) -> Option<Vec<f64>> {
    const D: usize = NUM_FEATURES;
    let mut m = [[0.0f64; D + 1]; D];
    for i in 0..D {
        for j in 0..D {
            m[i][j] = a[i * D + j];
        }
        m[i][i] += lambda;
        m[i][D] = b[i];
    }
    for col in 0..D {
        let mut pivot = col;
        for row in col + 1..D {
            if m[row][col].abs() > m[pivot][col].abs() {
                pivot = row;
            }
        }
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        for row in col + 1..D {
            let (head, tail) = m.split_at_mut(row);
            let (pivot_row, target) = (&head[col], &mut tail[0]);
            let f = target[col] / pivot_row[col];
            for (t, p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= f * p;
            }
        }
    }
    let mut w = vec![0.0f64; D];
    for i in (0..D).rev() {
        let mut acc = m[i][D];
        for j in i + 1..D {
            acc -= m[i][j] * w[j];
        }
        w[i] = acc / m[i][i];
    }
    if w.iter().all(|v| v.is_finite()) {
        Some(w)
    } else {
        None
    }
}

/// Per-arm accounting: observations, reward mass, and regret mass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ArmStats {
    /// Observed outcomes folded into this arm: one per pull under partial
    /// feedback ([`BanditState::reward`]), one per phase under
    /// full-information feedback ([`BanditState::update_full`]).
    pub pulls: u64,
    /// Sum of rewards over those observations.
    pub reward_sum: f64,
    /// Sum of `(best − reward)` over those observations.
    pub regret_sum: f64,
}

impl ArmStats {
    /// Empirical mean reward (0.0 before the first pull).
    pub fn mean(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.reward_sum / self.pulls as f64
        }
    }
}

/// The contextual bandit over the eleven arms of [`arms`].
///
/// Each context keeps its own arm table, but selection shrinks a context's
/// per-arm statistics toward the cross-context `global` mean with
/// [`CONTEXT_PRIOR_WEIGHT`] pseudo-pulls: a sparse context scores arms
/// mostly by the global prior (warm start), while a data-rich context
/// specializes. Sample phases are scarce — a full sweep books only a few
/// dozen pulls — so fully independent contexts would spend the entire run
/// re-seeding arms. `BTreeMap` keeps serialization and iteration order
/// deterministic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BanditState {
    policy: BanditPolicy,
    epsilon: f64,
    ucb_c: f64,
    rng: SplitMix64,
    contexts: BTreeMap<String, Vec<ArmStats>>,
    global: Vec<ArmStats>,
    total_pulls: u64,
    total_regret: f64,
    /// Set once [`update_full`](Self::update_full) has been seen: under
    /// full-information feedback every arm's mean is estimated every phase
    /// regardless of the choice, so exploration buys nothing and selection
    /// switches to follow-the-leader (pure greedy on the shrunk means).
    #[serde(default)]
    full_info: bool,
}

/// Prior strength (pseudo-pulls) with which a context's per-arm statistics
/// are shrunk toward the global cross-context mean during selection.
const CONTEXT_PRIOR_WEIGHT: f64 = 1.0;

impl BanditState {
    /// A fresh bandit under `cfg`.
    pub fn new(cfg: &LearnConfig) -> Self {
        BanditState {
            policy: cfg.policy,
            epsilon: cfg.epsilon.clamp(0.0, 1.0),
            ucb_c: cfg.ucb_c.max(0.0),
            rng: SplitMix64::new(cfg.seed),
            contexts: BTreeMap::new(),
            global: vec![ArmStats::default(); NUM_ARMS],
            total_pulls: 0,
            total_regret: 0.0,
            full_info: false,
        }
    }

    /// Selects an arm index for `context` (does not book a pull — the pull
    /// and its reward are booked together by [`reward`](Self::reward), so
    /// an unfinished phase never skews the statistics).
    pub fn select(&mut self, context: &str) -> usize {
        // Untried arms first, against the *global* table: each arm needs
        // one pull somewhere before means are meaningful, but a context
        // never re-seeds arms another context has already tried.
        if let Some(i) = self.global.iter().position(|a| a.pulls == 0) {
            return i;
        }
        let global = &self.global;
        let stats = self
            .contexts
            .entry(context.to_string())
            .or_insert_with(|| vec![ArmStats::default(); NUM_ARMS]);
        // Context statistics shrunk toward the global mean with
        // CONTEXT_PRIOR_WEIGHT pseudo-pulls.
        let tau = CONTEXT_PRIOR_WEIGHT;
        let mean_eff = |i: usize| {
            (stats[i].reward_sum + tau * global[i].mean()) / (stats[i].pulls as f64 + tau)
        };
        // Under full-information feedback (see `update_full`) every arm's
        // mean is re-estimated every phase whatever we pick, so exploration
        // bonuses are pure regret: follow the leader.
        if self.full_info {
            let scores: Vec<f64> = (0..NUM_ARMS).map(mean_eff).collect();
            return crate::predictor::argmax(&scores);
        }
        match self.policy {
            BanditPolicy::EpsilonGreedy => {
                if self.rng.next_f64() < self.epsilon {
                    (self.rng.next_u64() % NUM_ARMS as u64) as usize
                } else {
                    let scores: Vec<f64> = (0..NUM_ARMS).map(mean_eff).collect();
                    crate::predictor::argmax(&scores)
                }
            }
            BanditPolicy::Ucb1 => {
                let ln_n = (self.total_pulls.max(1) as f64).ln();
                let c = self.ucb_c;
                let scores: Vec<f64> = (0..NUM_ARMS)
                    .map(|i| mean_eff(i) + c * (2.0 * ln_n / (stats[i].pulls as f64 + tau)).sqrt())
                    .collect();
                crate::predictor::argmax(&scores)
            }
        }
    }

    /// Books one pull of `arm` in `context` with realized `reward`, against
    /// the best realized reward `best` (regret = `best − reward`).
    pub fn reward(&mut self, context: &str, arm: usize, reward: f64, best: f64) {
        assert!(arm < NUM_ARMS, "arm index out of range");
        if !reward.is_finite() || !best.is_finite() {
            return; // degenerate phase: never poison the statistics
        }
        let regret = (best - reward).max(0.0);
        let stats = self
            .contexts
            .entry(context.to_string())
            .or_insert_with(|| vec![ArmStats::default(); NUM_ARMS]);
        for s in [&mut stats[arm], &mut self.global[arm]] {
            s.pulls += 1;
            s.reward_sum += reward;
            s.regret_sum += regret;
        }
        self.total_pulls += 1;
        self.total_regret += regret;
    }

    /// Books one decision under *full-information* feedback: `rewards[i]`
    /// is the realized reward arm `i`'s pick would have earned this phase.
    /// The SOS batch protocol measures every candidate schedule in its
    /// sample and symbios phases, so every arm's counterfactual outcome is
    /// observed — folding them all in removes the exploration cost
    /// entirely (selection reduces to exploitation of well-estimated
    /// means, which an 11-arm bandit cannot afford to build one pull at a
    /// time over a few dozen sample phases). The decision itself — the
    /// chosen arm's pull and its realized regret against the best arm —
    /// is booked exactly as under [`reward`](Self::reward).
    pub fn update_full(&mut self, context: &str, rewards: &[f64], chosen: usize) {
        assert_eq!(rewards.len(), NUM_ARMS, "one reward per arm");
        assert!(chosen < NUM_ARMS, "arm index out of range");
        self.full_info = true;
        if !rewards[chosen].is_finite() {
            return; // degenerate phase: never poison the statistics
        }
        let best = rewards
            .iter()
            .copied()
            .filter(|r| r.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        let stats = self
            .contexts
            .entry(context.to_string())
            .or_insert_with(|| vec![ArmStats::default(); NUM_ARMS]);
        for (i, &r) in rewards.iter().enumerate() {
            if !r.is_finite() {
                continue;
            }
            let regret = (best - r).max(0.0);
            for s in [&mut stats[i], &mut self.global[i]] {
                s.pulls += 1;
                s.reward_sum += r;
                s.regret_sum += regret;
            }
        }
        self.total_pulls += 1;
        self.total_regret += (best - rewards[chosen]).max(0.0);
    }

    /// Global per-arm accounting, in [`arms`] order.
    pub fn global_arms(&self) -> &[ArmStats] {
        &self.global
    }

    /// Pulls booked across all contexts.
    pub fn total_pulls(&self) -> u64 {
        self.total_pulls
    }

    /// Cumulative regret across all contexts.
    pub fn total_regret(&self) -> f64 {
        self.total_regret
    }

    /// Distinct contexts seen.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }
}

/// Classifies a benchmark into a coarse jobmix class by its instruction-mix
/// profile: `F` (FP-heavy), `M` (memory-heavy), or `I` (integer/other).
pub fn class_of(b: Benchmark) -> char {
    let p = b.profile();
    let w = p.mix.weights();
    let total: f64 = w.iter().sum::<f64>().max(1e-9);
    // ClassMix weight order: [int_alu, int_mul, fp_add, fp_mul, fp_div,
    // load, store, branch].
    let fp = (w[2] + w[3] + w[4]) / total;
    let mem = (w[5] + w[6]) / total;
    // Thresholds calibrated against the Table-1 profiles: every FP code has
    // fp ≥ 0.30; among the integer codes only IS (0.53 loads+stores) is
    // memory-bound, with GCC/GO near 0.3.
    if fp >= 0.20 {
        'F'
    } else if mem >= 0.45 {
        'M'
    } else {
        'I'
    }
}

/// The coarse jobmix-class-histogram context string of a set of live
/// benchmarks, e.g. `"F2I3M1"`. Counts saturate at 9 to bound context
/// cardinality (and keep the string fixed-width).
pub fn context_of(benchmarks: &[Benchmark]) -> String {
    let (mut f, mut i, mut m) = (0usize, 0usize, 0usize);
    for &b in benchmarks {
        match class_of(b) {
            'F' => f += 1,
            'M' => m += 1,
            _ => i += 1,
        }
    }
    format!("F{}I{}M{}", f.min(9), i.min(9), m.min(9))
}

/// A serializable summary of a learner's state, carried by cluster shard
/// reports, the `learn.*` metrics family, and the `results/learn/` artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LearnSummary {
    /// Regressor training observations.
    pub train_updates: u64,
    /// Predictions served (learned + bandit picks).
    pub predictions: u64,
    /// EWMA of the prequential absolute prediction error.
    pub err_ewma: f64,
    /// Bandit pulls booked.
    pub bandit_pulls: u64,
    /// Cumulative bandit regret.
    pub bandit_regret: f64,
    /// Distinct bandit contexts seen.
    pub contexts: usize,
    /// Per-arm `(name, pulls, mean reward)` in [`arms`] order.
    pub arms: Vec<(String, u64, f64)>,
}

/// The composite learner: one ridge regressor plus one contextual bandit,
/// the unit of state that plumbs through engines and snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Learner {
    /// The configuration the learner was built under.
    pub cfg: LearnConfig,
    regressor: RidgeRegressor,
    bandit: BanditState,
    predictions: u64,
}

impl Learner {
    /// A fresh learner under `cfg`.
    pub fn new(cfg: LearnConfig) -> Self {
        Learner {
            cfg,
            regressor: RidgeRegressor::new(cfg.lambda, cfg.ewma_alpha),
            bandit: BanditState::new(&cfg),
            predictions: 0,
        }
    }

    /// The regressor's per-candidate scores (predicted weighted speedup),
    /// or `None` while the model has fewer than `min_train` observations.
    /// Solves the normal equations once and reuses the weights across
    /// candidates.
    pub fn learned_scores(&self, samples: &[ScheduleSample]) -> Option<Vec<f64>> {
        if self.regressor.n < self.cfg.min_train {
            return None;
        }
        let w = self.regressor.weights()?;
        Some(
            samples
                .iter()
                .map(|s| features(s).iter().zip(&w).map(|(a, b)| a * b).sum())
                .collect(),
        )
    }

    /// The candidate the learned model picks. Cold-start fallback: before
    /// `min_train` observations the ranking is the paper's best fixed
    /// predictor (`Score`), so an untrained model never schedules worse
    /// than the paper's default.
    pub fn choose_learned(&mut self, samples: &[ScheduleSample]) -> usize {
        self.predictions += 1;
        match self.learned_scores(samples) {
            Some(scores) => crate::predictor::argmax(&scores),
            None => PredictorKind::Score.choose(samples),
        }
    }

    /// The bandit's decision for one sample phase: selects an arm for
    /// `context`, then the candidate that arm picks. Returns
    /// `(arm index, candidate index)`; settle the pull later with
    /// [`reward_arm`](Self::reward_arm).
    pub fn choose_bandit(&mut self, samples: &[ScheduleSample], context: &str) -> (usize, usize) {
        self.predictions += 1;
        let arm = self.bandit.select(context);
        let pick = match arms()[arm] {
            PredictorKind::Learned => match self.learned_scores(samples) {
                Some(scores) => crate::predictor::argmax(&scores),
                None => PredictorKind::Score.choose(samples),
            },
            fixed => fixed.choose(samples),
        };
        (arm, pick)
    }

    /// Trains the regressor on one sample phase: candidate features against
    /// realized targets (weighted speedup in the batch protocol, an IPC
    /// proxy online). Lengths must match.
    pub fn train(&mut self, samples: &[ScheduleSample], targets: &[f64]) {
        assert_eq!(
            samples.len(),
            targets.len(),
            "one target per sampled schedule"
        );
        for (s, &y) in samples.iter().zip(targets) {
            if y.is_finite() {
                self.regressor.observe(&features(s), y);
            }
        }
    }

    /// Books the realized reward of a bandit pull (see
    /// [`BanditState::reward`]) — the partial-feedback path used by the
    /// online engine, where only the chosen schedule runs to completion.
    pub fn reward_arm(&mut self, arm: usize, context: &str, reward: f64, best: f64) {
        self.bandit.reward(context, arm, reward, best);
    }

    /// Books one decision with every arm's realized reward (see
    /// [`BanditState::update_full`]) — the full-information path used by
    /// the batch protocol, where the symbios phase measures all candidate
    /// schedules.
    pub fn reward_all(&mut self, context: &str, rewards: &[f64], chosen: usize) {
        self.bandit.update_full(context, rewards, chosen);
    }

    /// Regressor training observations.
    pub fn train_updates(&self) -> u64 {
        self.regressor.observations()
    }

    /// Predictions served.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// The bandit state (read-only).
    pub fn bandit(&self) -> &BanditState {
        &self.bandit
    }

    /// EWMA of the prequential absolute prediction error.
    pub fn err_ewma(&self) -> f64 {
        self.regressor.err_ewma()
    }

    /// The serializable summary (shard reports, metrics, artifacts).
    pub fn summary(&self) -> LearnSummary {
        LearnSummary {
            train_updates: self.regressor.observations(),
            predictions: self.predictions,
            err_ewma: self.regressor.err_ewma(),
            bandit_pulls: self.bandit.total_pulls(),
            bandit_regret: self.bandit.total_regret(),
            contexts: self.bandit.context_count(),
            arms: arms()
                .iter()
                .zip(self.bandit.global_arms())
                .map(|(p, a)| (p.name().to_string(), a.pulls, a.mean()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ipc: f64, fq: f64, balance: f64) -> ScheduleSample {
        ScheduleSample {
            notation: "t".into(),
            ipc,
            allconf: 50.0,
            dcache: 95.0,
            fq,
            fp: fq * 0.5,
            sum2: fq * 1.5,
            diversity: 0.2,
            balance,
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ridge_converges_on_synthetic_linear_workload() {
        // y = 2·ipc − 5·(fq/100) + 0.3, exactly linear in the features.
        let mut r = RidgeRegressor::new(1e-6, 0.1);
        let mut rng = SplitMix64::new(9);
        for _ in 0..500 {
            let ipc = 1.0 + 2.0 * rng.next_f64();
            let fq = 40.0 * rng.next_f64();
            let s = sample(ipc, fq, rng.next_f64());
            let y = 2.0 * ipc - 5.0 * (fq / 100.0) + 0.3;
            r.observe(&features(&s), y);
        }
        let s = sample(1.7, 12.0, 0.4);
        let want = 2.0 * 1.7 - 5.0 * 0.12 + 0.3;
        let got = r.predict(&features(&s)).unwrap();
        assert!((got - want).abs() < 1e-3, "got {got}, want {want}");
        assert!(r.err_ewma() < 1e-3, "err EWMA {}", r.err_ewma());
    }

    #[test]
    fn ridge_is_order_deterministic_and_serializable() {
        let mut a = RidgeRegressor::new(0.5, 0.2);
        let mut rng = SplitMix64::new(3);
        let data: Vec<(ScheduleSample, f64)> = (0..50)
            .map(|_| {
                (
                    sample(rng.next_f64() * 3.0, rng.next_f64() * 30.0, rng.next_f64()),
                    rng.next_f64() * 2.0,
                )
            })
            .collect();
        for (s, y) in &data {
            a.observe(&features(s), *y);
        }
        // Serialize, restore, and compare the *solved weights*: only the
        // accumulators carry state, so this proves they restore exactly.
        let json = serde_json::to_string(&a).unwrap();
        let b: RidgeRegressor = serde_json::from_str(&json).unwrap();
        assert_eq!(a.weights().unwrap(), b.weights().unwrap());
        assert_eq!(serde_json::to_string(&a).unwrap(), json);
    }

    #[test]
    fn empty_regressor_predicts_none() {
        let r = RidgeRegressor::new(1.0, 0.1);
        assert!(r.predict(&features(&sample(1.0, 1.0, 0.1))).is_none());
        assert!(r.weights().is_none());
    }

    #[test]
    fn bandit_finds_best_arm_on_stationary_rewards() {
        // Arm 3 pays 1.0, everything else pays 0.2: after warm-up both
        // policies must pull arm 3 at least 80% of the time.
        for policy in [BanditPolicy::EpsilonGreedy, BanditPolicy::Ucb1] {
            let cfg = LearnConfig {
                policy,
                epsilon: 0.05,
                ..LearnConfig::default()
            };
            let mut b = BanditState::new(&cfg);
            let rounds = 600;
            let mut best_pulls = 0;
            for _ in 0..rounds {
                let arm = b.select("ctx");
                if arm == 3 {
                    best_pulls += 1;
                }
                let r = if arm == 3 { 1.0 } else { 0.2 };
                b.reward("ctx", arm, r, 1.0);
            }
            let frac = best_pulls as f64 / rounds as f64;
            assert!(
                frac >= 0.8,
                "{}: best arm pulled only {frac:.2}",
                policy.name()
            );
        }
    }

    #[test]
    fn bandit_contexts_specialize_despite_shared_prior() {
        let cfg = LearnConfig {
            policy: BanditPolicy::Ucb1,
            ..LearnConfig::default()
        };
        let mut b = BanditState::new(&cfg);
        // Context A: arm 0 best. Context B: arm 1 best. Selection shares a
        // global prior, but with enough local data each context must still
        // converge on its own best arm.
        let (mut a_best, mut b_best) = (0, 0);
        let rounds = 300;
        for _ in 0..rounds {
            let a = b.select("A");
            a_best += (a == 0) as u32;
            b.reward("A", a, if a == 0 { 1.0 } else { 0.1 }, 1.0);
            let c = b.select("B");
            b_best += (c == 1) as u32;
            b.reward("B", c, if c == 1 { 1.0 } else { 0.1 }, 1.0);
        }
        assert_eq!(b.context_count(), 2);
        assert!(
            a_best as f64 / rounds as f64 >= 0.7,
            "A best {a_best}/{rounds}"
        );
        assert!(
            b_best as f64 / rounds as f64 >= 0.7,
            "B best {b_best}/{rounds}"
        );
        assert_eq!(b.select("A"), 0);
        assert_eq!(b.select("B"), 1);
    }

    #[test]
    fn bandit_new_context_warm_starts_from_global_prior() {
        let cfg = LearnConfig {
            policy: BanditPolicy::Ucb1,
            ..LearnConfig::default()
        };
        let mut b = BanditState::new(&cfg);
        // Train heavily in one context: arm 3 dominates.
        for _ in 0..100 {
            let a = b.select("seen");
            b.reward("seen", a, if a == 3 { 1.0 } else { 0.2 }, 1.0);
        }
        // A brand-new context must not re-seed all eleven arms: its first
        // pick already exploits the global prior.
        assert_eq!(b.select("fresh"), 3);
    }

    #[test]
    fn bandit_full_information_update_books_all_arms() {
        let mut b = BanditState::new(&LearnConfig::default());
        let mut rewards = vec![0.2; NUM_ARMS];
        rewards[4] = 1.0;
        let chosen = b.select("x");
        b.update_full("x", &rewards, chosen);
        // One decision, but every arm gained an observation — so the very
        // next selection already exploits the best arm.
        assert_eq!(b.total_pulls(), 1);
        assert!(b.global_arms().iter().all(|a| a.pulls == 1));
        assert_eq!(b.select("x"), 4);
        // A non-finite counterfactual is skipped without poisoning the
        // others; a non-finite chosen reward drops the whole phase.
        rewards[7] = f64::NAN;
        b.update_full("x", &rewards, 4);
        assert_eq!(b.global_arms()[7].pulls, 1);
        assert_eq!(b.global_arms()[4].pulls, 2);
        rewards[7] = 0.2;
        rewards[2] = f64::INFINITY;
        b.update_full("x", &rewards, 2);
        assert_eq!(b.total_pulls(), 2);
    }

    #[test]
    fn bandit_full_information_disables_exploration() {
        // Even with an enormous UCB bonus, a bandit that has seen
        // full-information feedback follows the leader: the bonus would
        // only pay for information the feedback already provides.
        let mut b = BanditState::new(&LearnConfig {
            policy: BanditPolicy::Ucb1,
            ucb_c: 100.0,
            ..LearnConfig::default()
        });
        let mut rewards = vec![0.1; NUM_ARMS];
        rewards[6] = 1.0;
        for _ in 0..5 {
            let chosen = b.select("x");
            b.update_full("x", &rewards, chosen);
        }
        // After the first decision every later pick is the leader, which a
        // ucb_c this large would otherwise never allow.
        assert_eq!(b.select("x"), 6);
        assert_eq!(b.select("other"), 6);
    }

    #[test]
    fn bandit_regret_accounting() {
        let mut b = BanditState::new(&LearnConfig::default());
        let arm = b.select("x");
        b.reward("x", arm, 0.7, 1.0);
        assert_eq!(b.total_pulls(), 1);
        assert!((b.total_regret() - 0.3).abs() < 1e-12);
        // Non-finite rewards are dropped, not booked.
        b.reward("x", 0, f64::NAN, 1.0);
        assert_eq!(b.total_pulls(), 1);
    }

    #[test]
    fn learner_cold_start_falls_back_to_score() {
        let mut l = Learner::new(LearnConfig::default());
        let samples = vec![sample(3.0, 20.0, 0.8), sample(2.8, 5.0, 0.1)];
        assert!(l.learned_scores(&samples).is_none());
        assert_eq!(
            l.choose_learned(&samples),
            PredictorKind::Score.choose(&samples)
        );
    }

    #[test]
    fn learner_prefers_high_target_after_training() {
        let mut l = Learner::new(LearnConfig {
            min_train: 4,
            lambda: 1e-6,
            ..LearnConfig::default()
        });
        // Teach it: realized WS is proportional to IPC.
        let mut rng = SplitMix64::new(1);
        for _ in 0..20 {
            let s0 = sample(1.0 + rng.next_f64(), 10.0, 0.5);
            let s1 = sample(1.0 + rng.next_f64(), 10.0, 0.5);
            let t = [s0.ipc * 0.5, s1.ipc * 0.5];
            l.train(&[s0, s1], &t);
        }
        let probe = vec![sample(1.2, 10.0, 0.5), sample(2.9, 10.0, 0.5)];
        assert_eq!(l.choose_learned(&probe), 1);
    }

    #[test]
    fn learner_snapshot_round_trip_is_byte_identical() {
        let mut l = Learner::new(LearnConfig::default());
        let samples = vec![sample(2.0, 10.0, 0.3), sample(1.5, 4.0, 0.2)];
        for i in 0..12 {
            let (arm, _) = l.choose_bandit(&samples, "F1I1M0");
            l.reward_arm(arm, "F1I1M0", 0.5 + 0.01 * i as f64, 1.0);
            l.train(&samples, &[1.1, 0.9]);
        }
        let json = serde_json::to_string(&l).unwrap();
        let mut back: Learner = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // The restored learner continues identically.
        let (a1, p1) = l.choose_bandit(&samples, "F1I1M0");
        let (a2, p2) = back.choose_bandit(&samples, "F1I1M0");
        assert_eq!((a1, p1), (a2, p2));
        assert_eq!(
            serde_json::to_string(&l).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }

    #[test]
    fn context_strings_are_stable_and_bounded() {
        use workloads::Benchmark::*;
        let ctx = context_of(&[Fp, Mg, Gcc, Go]);
        assert_eq!(ctx.len(), 6);
        assert!(ctx.starts_with('F'));
        // Saturation at 9.
        let many = vec![Gcc; 30];
        assert_eq!(context_of(&many), "F0I9M0");
        assert_eq!(context_of(&[]), "F0I0M0");
        // FP codes classify as F, integer codes as I, IS (load/store bound)
        // as M.
        assert_eq!(class_of(Fp), 'F');
        assert_eq!(class_of(Mg), 'F');
        assert_eq!(class_of(Gcc), 'I');
        assert_eq!(class_of(Go), 'I');
        assert_eq!(class_of(Is), 'M');
    }

    #[test]
    fn arms_are_ten_fixed_plus_learned() {
        let a = arms();
        assert_eq!(a.len(), NUM_ARMS);
        assert_eq!(&a[..10], &PredictorKind::ALL);
        assert_eq!(a[10], PredictorKind::Learned);
    }

    #[test]
    fn summary_reflects_state() {
        let mut l = Learner::new(LearnConfig::default());
        let samples = vec![sample(2.0, 10.0, 0.3), sample(1.5, 4.0, 0.2)];
        let (arm, _) = l.choose_bandit(&samples, "F0I2M0");
        l.reward_arm(arm, "F0I2M0", 0.9, 1.0);
        l.train(&samples, &[1.0, 0.8]);
        let s = l.summary();
        assert_eq!(s.train_updates, 2);
        assert_eq!(s.predictions, 1);
        assert_eq!(s.bandit_pulls, 1);
        assert_eq!(s.contexts, 1);
        assert_eq!(s.arms.len(), NUM_ARMS);
        let json = serde_json::to_string(&s).unwrap();
        let back: LearnSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

//! Driving the processor through schedules.
//!
//! The [`Runner`] owns the [`Processor`] and the [`JobPool`] and executes
//! coschedules timeslice by timeslice, exactly as the paper's jobscheduler
//! does: "Every 5 million cycles ... the jobscheduler receives a clock pulse;
//! if runnable jobs are available that were not scheduled during the previous
//! timeslice, it swaps out one or more of the jobs that ran in the last
//! timeslice, replacing these with jobs that did not."

use crate::job::JobPool;
use crate::schedule::{Coschedule, Schedule};
use crate::ws::{weighted_speedup, SoloRates};
use serde::Serialize;
use smtsim::{MachineConfig, Processor, TimesliceStats};

/// Everything measured while running one full rotation of a schedule.
///
/// Serializable and comparable so the replay harness can prove two runs
/// byte-identical.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RotationStats {
    /// Per-slice hardware-counter snapshots, in execution order.
    pub slices: Vec<TimesliceStats>,
    /// The coschedule each slice ran.
    pub tuples: Vec<Coschedule>,
}

impl RotationStats {
    /// Total cycles across the rotation.
    pub fn cycles(&self) -> u64 {
        self.slices.iter().map(|s| s.cycles).sum()
    }

    /// Committed instructions per pool thread over the rotation.
    pub fn committed_per_thread(&self, num_threads: usize) -> Vec<u64> {
        let mut out = vec![0u64; num_threads];
        for (slice, tuple) in self.slices.iter().zip(&self.tuples) {
            for &t in tuple.threads() {
                if let Some(ts) = slice.thread(smtsim::StreamId(t as u32)) {
                    out[t] += ts.committed;
                }
            }
        }
        out
    }

    /// `WS(t)` of the rotation given solo rates.
    pub fn weighted_speedup(&self, solo: &SoloRates) -> f64 {
        let committed = self.committed_per_thread(solo.len());
        weighted_speedup(&committed, self.cycles(), solo)
    }
}

/// Drives a processor through coschedules of a job pool.
pub struct Runner {
    processor: Processor,
    pool: JobPool,
    timeslice: u64,
}

impl Runner {
    /// Builds a runner. `timeslice` is the scheduler clock in cycles.
    ///
    /// # Panics
    /// Panics if `timeslice == 0` or the machine configuration is invalid.
    pub fn new(cfg: MachineConfig, pool: JobPool, timeslice: u64) -> Self {
        assert!(timeslice > 0, "timeslice must be positive");
        Runner {
            processor: Processor::new(cfg),
            pool,
            timeslice,
        }
    }

    /// The job pool.
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// The scheduler clock in cycles.
    pub fn timeslice(&self) -> u64 {
        self.timeslice
    }

    /// The number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.processor.contexts()
    }

    /// Runs one coschedule for `cycles` cycles.
    ///
    /// # Panics
    /// Panics if the tuple is larger than the number of hardware contexts.
    pub fn run_tuple(&mut self, tuple: &Coschedule, cycles: u64) -> TimesliceStats {
        let mut refs = self.pool.select_mut(tuple.threads());
        let mut dyns: Vec<&mut dyn smtsim::trace::InstructionSource> = refs
            .iter_mut()
            .map(|r| r as &mut dyn smtsim::trace::InstructionSource)
            .collect();
        self.processor.run_timeslice(&mut dyns, cycles)
    }

    /// Runs one full rotation of `schedule` (each slice one timeslice long).
    pub fn run_rotation(&mut self, schedule: &Schedule) -> RotationStats {
        let tuples = schedule.tuples();
        let slices = tuples
            .iter()
            .map(|t| self.run_tuple(t, self.timeslice))
            .collect();
        RotationStats { slices, tuples }
    }

    /// Runs `rotations` rotations of `schedule`, returning per-rotation stats.
    pub fn run_schedule(&mut self, schedule: &Schedule, rotations: usize) -> Vec<RotationStats> {
        (0..rotations)
            .map(|_| self.run_rotation(schedule))
            .collect()
    }

    /// Measures each thread's single-threaded (solo) IPC: every job group
    /// runs alone — siblings of a parallel job together, as §7 requires —
    /// for a `warmup` then a `measure` window.
    ///
    /// # Panics
    /// Panics if `measure == 0`.
    pub fn calibrate_solo(&mut self, warmup: u64, measure: u64) -> SoloRates {
        assert!(measure > 0, "measurement window must be non-empty");
        let mut rates = vec![0.0; self.pool.len()];
        let groups: Vec<Vec<usize>> = self.pool.groups().to_vec();
        for group in groups {
            let tuple = Coschedule::new(group.iter().copied());
            self.processor.flush_memory_state();
            if warmup > 0 {
                let _ = self.run_tuple(&tuple, warmup);
            }
            let stats = self.run_tuple(&tuple, measure);
            for &t in tuple.threads() {
                let ipc = stats
                    .thread(smtsim::StreamId(t as u32))
                    .map(|ts| ts.ipc(measure))
                    .unwrap_or(0.0);
                rates[t] = ipc.max(1e-6);
            }
        }
        self.processor.flush_memory_state();
        SoloRates::new(rates)
    }

    /// Direct access to the processor (e.g. to flush caches for cold-start
    /// experiments).
    pub fn processor_mut(&mut self) -> &mut Processor {
        &mut self.processor
    }

    /// Installs a [`crate::telemetry::TelemetryObserver`] on the processor,
    /// so every timeslice this runner executes is recorded as a span (with
    /// conflict counters and occupancy samples) in the global telemetry
    /// recorder. Replaces any previously installed observer.
    pub fn attach_telemetry(&mut self) {
        self.processor
            .set_observer(Box::new(crate::telemetry::TelemetryObserver::new()));
    }

    /// Removes the processor's observer, if any (telemetry or otherwise).
    pub fn detach_telemetry(&mut self) {
        self.processor.clear_observer();
    }

    /// Consumes the runner, returning the pool (e.g. to rebuild with a
    /// different machine).
    pub fn into_pool(self) -> JobPool {
        self.pool
    }
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("threads", &self.pool.len())
            .field("contexts", &self.processor.contexts())
            .field("timeslice", &self.timeslice)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, JobSpec};

    fn pool4() -> JobPool {
        JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::single(Benchmark::Mg),
                JobSpec::single(Benchmark::Gcc),
                JobSpec::single(Benchmark::Is),
            ],
            7,
        )
    }

    fn runner() -> Runner {
        Runner::new(MachineConfig::alpha21264_like(2), pool4(), 5_000)
    }

    #[test]
    fn rotation_runs_every_tuple() {
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rot = r.run_rotation(&s);
        assert_eq!(rot.slices.len(), 2);
        assert_eq!(rot.cycles(), 10_000);
        let committed = rot.committed_per_thread(4);
        assert!(committed.iter().all(|&c| c > 0), "{committed:?}");
    }

    #[test]
    fn calibration_is_positive_and_ordered() {
        let mut r = runner();
        let solo = r.calibrate_solo(20_000, 20_000);
        assert_eq!(solo.len(), 4);
        // FP should be much faster solo than IS.
        assert!(solo.rate(0) > solo.rate(3), "{solo:?}");
    }

    #[test]
    fn ws_of_coschedule_is_plausible() {
        let mut r = runner();
        let solo = r.calibrate_solo(50_000, 50_000);
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        // Warm up one rotation, then measure a few.
        let _ = r.run_rotation(&s);
        let rots = r.run_schedule(&s, 3);
        for rot in &rots {
            let ws = rot.weighted_speedup(&solo);
            assert!(
                (0.4..2.5).contains(&ws),
                "WS should be near [0.8, 2.0] for 2 contexts / 4 jobs: {ws}"
            );
        }
    }

    #[test]
    fn schedule_makes_fair_progress() {
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rots = r.run_schedule(&s, 4);
        let mut committed = [0u64; 4];
        for rot in &rots {
            for (t, c) in rot.committed_per_thread(4).iter().enumerate() {
                committed[t] += c;
            }
        }
        // Every job was scheduled the same number of cycles.
        assert!(committed.iter().all(|&c| c > 0));
    }
}

//! Driving the processor through schedules.
//!
//! The [`Runner`] owns the [`Processor`] and the [`JobPool`] and executes
//! coschedules timeslice by timeslice, exactly as the paper's jobscheduler
//! does: "Every 5 million cycles ... the jobscheduler receives a clock pulse;
//! if runnable jobs are available that were not scheduled during the previous
//! timeslice, it swaps out one or more of the jobs that ran in the last
//! timeslice, replacing these with jobs that did not."

use crate::job::JobPool;
use crate::schedule::{Coschedule, Schedule};
use crate::ws::{weighted_speedup, SoloRates};
use serde::{Deserialize, Serialize};
use smtsim::fastsim::{tuple_key, FastSim, FastSimCounters, FastSimPolicy};
use smtsim::{MachineConfig, Processor, TimesliceStats};

/// Everything measured while running one full rotation of a schedule.
///
/// Serializable and comparable so the replay harness can prove two runs
/// byte-identical, and deserializable so the evaluation cache can reload
/// stored rotations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RotationStats {
    /// Per-slice hardware-counter snapshots, in execution order.
    pub slices: Vec<TimesliceStats>,
    /// The coschedule each slice ran.
    pub tuples: Vec<Coschedule>,
}

/// A rotation's coschedules name a thread id outside the pool the caller
/// described: [`RotationStats::try_committed_per_thread`] was asked to fold
/// per-thread counts into `num_threads` slots but a tuple references a
/// thread at or beyond that bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadOutOfRange {
    /// The offending thread id.
    pub thread: usize,
    /// The pool size the caller claimed.
    pub num_threads: usize,
    /// The coschedule that referenced it.
    pub tuple: Coschedule,
}

impl std::fmt::Display for ThreadOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coschedule {} references thread {} but the rotation was asked to \
             account for only {} pool threads (0..{}); the schedule and the \
             job pool disagree",
            self.tuple, self.thread, self.num_threads, self.num_threads
        )
    }
}

impl std::error::Error for ThreadOutOfRange {}

impl RotationStats {
    /// Total cycles across the rotation.
    pub fn cycles(&self) -> u64 {
        self.slices.iter().map(|s| s.cycles).sum()
    }

    /// Committed instructions per pool thread over the rotation, or a
    /// diagnostic error if any slice's coschedule names a thread id at or
    /// beyond `num_threads` (a schedule built against a different pool).
    pub fn try_committed_per_thread(
        &self,
        num_threads: usize,
    ) -> Result<Vec<u64>, ThreadOutOfRange> {
        let mut out = vec![0u64; num_threads];
        for (slice, tuple) in self.slices.iter().zip(&self.tuples) {
            for &t in tuple.threads() {
                if t >= num_threads {
                    return Err(ThreadOutOfRange {
                        thread: t,
                        num_threads,
                        tuple: tuple.clone(),
                    });
                }
                if let Some(ts) = slice.thread(smtsim::StreamId(t as u64)) {
                    out[t] += ts.committed;
                }
            }
        }
        Ok(out)
    }

    /// Committed instructions per pool thread over the rotation.
    ///
    /// # Panics
    /// Panics with a [`ThreadOutOfRange`] diagnostic (naming the offending
    /// tuple and thread id, not a bare index-out-of-bounds) if a coschedule
    /// references a thread at or beyond `num_threads`; use
    /// [`Self::try_committed_per_thread`] to handle that case gracefully.
    pub fn committed_per_thread(&self, num_threads: usize) -> Vec<u64> {
        self.try_committed_per_thread(num_threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// `WS(t)` of the rotation given solo rates.
    pub fn weighted_speedup(&self, solo: &SoloRates) -> f64 {
        let committed = self.committed_per_thread(solo.len());
        weighted_speedup(&committed, self.cycles(), solo)
    }
}

/// Drives a processor through coschedules of a job pool.
pub struct Runner {
    processor: Processor,
    pool: JobPool,
    timeslice: u64,
    /// Phase-aware fast-forward simulation ([`smtsim::fastsim`]); `None`
    /// (the default) runs every slice through the detailed model.
    fastsim: Option<FastSim>,
}

impl Runner {
    /// Builds a runner. `timeslice` is the scheduler clock in cycles.
    ///
    /// # Panics
    /// Panics if `timeslice == 0` or the machine configuration is invalid.
    pub fn new(cfg: MachineConfig, pool: JobPool, timeslice: u64) -> Self {
        assert!(timeslice > 0, "timeslice must be positive");
        Runner {
            processor: Processor::new(cfg),
            pool,
            timeslice,
            fastsim: None,
        }
    }

    /// Enables (or, with `None`, disables) phase-aware fast simulation:
    /// stable coschedule phases are extrapolated instead of executed. Solo
    /// calibration ([`Self::calibrate_solo`]) always measures in full
    /// detail regardless of this setting.
    pub fn set_fastsim(&mut self, policy: Option<FastSimPolicy>) {
        self.fastsim = policy.map(FastSim::new);
    }

    /// Lifetime extrapolated-vs-detailed counters, when fast-sim is on.
    pub fn fastsim_counters(&self) -> Option<&FastSimCounters> {
        self.fastsim.as_ref().map(|f| f.counters())
    }

    /// The job pool.
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// The scheduler clock in cycles.
    pub fn timeslice(&self) -> u64 {
        self.timeslice
    }

    /// The number of hardware contexts.
    pub fn contexts(&self) -> usize {
        self.processor.contexts()
    }

    /// Runs one coschedule for `cycles` cycles (through the fast-sim
    /// extrapolator when one is set and the tuple's phase is locked).
    ///
    /// # Panics
    /// Panics if the tuple is larger than the number of hardware contexts.
    pub fn run_tuple(&mut self, tuple: &Coschedule, cycles: u64) -> TimesliceStats {
        if self.fastsim.is_some() {
            return self.run_tuple_fast(tuple, cycles);
        }
        self.run_tuple_detailed(tuple, cycles)
    }

    /// One detailed timeslice of the pipeline model.
    fn run_tuple_detailed(&mut self, tuple: &Coschedule, cycles: u64) -> TimesliceStats {
        let mut refs = self.pool.select_dyn(tuple.threads());
        self.processor.run_timeslice(&mut refs, cycles)
    }

    /// The fast-sim slice protocol: extrapolate a locked phase (and skip
    /// the streams past the credited work), otherwise run detailed and feed
    /// the phase detector.
    fn run_tuple_fast(&mut self, tuple: &Coschedule, cycles: u64) -> TimesliceStats {
        let key = tuple_key(tuple.threads().iter().map(|&t| t as u64));
        let fs = self.fastsim.as_mut().expect("fast path requires fastsim");
        if let Some(stats) = fs.try_extrapolate(&key, cycles) {
            for r in self.pool.select_dyn(tuple.threads()) {
                if let Some(ts) = stats.thread(r.id()) {
                    r.skip_instructions(ts.committed);
                }
            }
            return stats;
        }
        let stats = self.run_tuple_detailed(tuple, cycles);
        let _ = self
            .fastsim
            .as_mut()
            .expect("fast path requires fastsim")
            .observe_detailed(&key, &stats);
        stats
    }

    /// Runs one full rotation of `schedule` (each slice one timeslice long).
    pub fn run_rotation(&mut self, schedule: &Schedule) -> RotationStats {
        let tuples = schedule.tuples();
        self.run_rotation_of(&tuples)
    }

    /// One rotation over a precomputed tuple list (so multi-rotation runs
    /// don't rebuild the list every rotation).
    fn run_rotation_of(&mut self, tuples: &[Coschedule]) -> RotationStats {
        let mut slices = Vec::with_capacity(tuples.len());
        for t in tuples {
            slices.push(self.run_tuple(t, self.timeslice));
        }
        RotationStats {
            slices,
            tuples: tuples.to_vec(),
        }
    }

    /// Runs `rotations` rotations of `schedule`, returning per-rotation stats.
    pub fn run_schedule(&mut self, schedule: &Schedule, rotations: usize) -> Vec<RotationStats> {
        let tuples = schedule.tuples();
        let mut out = Vec::with_capacity(rotations);
        for _ in 0..rotations {
            out.push(self.run_rotation_of(&tuples));
        }
        out
    }

    /// Measures each thread's single-threaded (solo) IPC: every job group
    /// runs alone — siblings of a parallel job together, as §7 requires —
    /// for a `warmup` then a `measure` window.
    ///
    /// # Panics
    /// Panics if `measure == 0`.
    pub fn calibrate_solo(&mut self, warmup: u64, measure: u64) -> SoloRates {
        assert!(measure > 0, "measurement window must be non-empty");
        let mut rates = vec![0.0; self.pool.len()];
        let groups: Vec<Vec<usize>> = self.pool.groups().to_vec();
        for group in groups {
            let tuple = Coschedule::new(group.iter().copied());
            self.processor.flush_memory_state();
            // Calibration is a measurement, never an extrapolation: it runs
            // the detailed model even when fast-sim is enabled.
            if warmup > 0 {
                let _ = self.run_tuple_detailed(&tuple, warmup);
            }
            let stats = self.run_tuple_detailed(&tuple, measure);
            for &t in tuple.threads() {
                let ipc = stats
                    .thread(smtsim::StreamId(t as u64))
                    .map(|ts| ts.ipc(measure))
                    .unwrap_or(0.0);
                rates[t] = ipc.max(1e-6);
            }
        }
        self.processor.flush_memory_state();
        SoloRates::new(rates)
    }

    /// Direct access to the processor (e.g. to flush caches for cold-start
    /// experiments).
    pub fn processor_mut(&mut self) -> &mut Processor {
        &mut self.processor
    }

    /// Installs a [`crate::telemetry::TelemetryObserver`] on the processor,
    /// so every timeslice this runner executes is recorded as a span (with
    /// conflict counters and occupancy samples) in the global telemetry
    /// recorder. Replaces any previously installed observer.
    pub fn attach_telemetry(&mut self) {
        self.processor
            .set_observer(Box::new(crate::telemetry::TelemetryObserver::new()));
    }

    /// Removes the processor's observer, if any (telemetry or otherwise).
    pub fn detach_telemetry(&mut self) {
        self.processor.clear_observer();
    }

    /// Consumes the runner, returning the pool (e.g. to rebuild with a
    /// different machine).
    pub fn into_pool(self) -> JobPool {
        self.pool
    }
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("threads", &self.pool.len())
            .field("contexts", &self.processor.contexts())
            .field("timeslice", &self.timeslice)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, JobSpec};

    fn pool4() -> JobPool {
        JobPool::from_specs(
            &[
                JobSpec::single(Benchmark::Fp),
                JobSpec::single(Benchmark::Mg),
                JobSpec::single(Benchmark::Gcc),
                JobSpec::single(Benchmark::Is),
            ],
            7,
        )
    }

    fn runner() -> Runner {
        Runner::new(MachineConfig::alpha21264_like(2), pool4(), 5_000)
    }

    #[test]
    fn rotation_runs_every_tuple() {
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rot = r.run_rotation(&s);
        assert_eq!(rot.slices.len(), 2);
        assert_eq!(rot.cycles(), 10_000);
        let committed = rot.committed_per_thread(4);
        assert!(committed.iter().all(|&c| c > 0), "{committed:?}");
    }

    #[test]
    fn calibration_is_positive_and_ordered() {
        let mut r = runner();
        let solo = r.calibrate_solo(20_000, 20_000);
        assert_eq!(solo.len(), 4);
        // FP should be much faster solo than IS.
        assert!(solo.rate(0) > solo.rate(3), "{solo:?}");
    }

    #[test]
    fn ws_of_coschedule_is_plausible() {
        let mut r = runner();
        let solo = r.calibrate_solo(50_000, 50_000);
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        // Warm up one rotation, then measure a few.
        let _ = r.run_rotation(&s);
        let rots = r.run_schedule(&s, 3);
        for rot in &rots {
            let ws = rot.weighted_speedup(&solo);
            assert!(
                (0.4..2.5).contains(&ws),
                "WS should be near [0.8, 2.0] for 2 contexts / 4 jobs: {ws}"
            );
        }
    }

    #[test]
    fn out_of_range_thread_id_is_a_diagnostic_not_an_index_panic() {
        // Regression: a coschedule naming thread 5 against a 2-thread pool
        // used to panic with an unhelpful `index out of bounds`; it must now
        // surface a diagnostic naming the tuple and both bounds.
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rot = r.run_rotation(&s);
        let err = rot.try_committed_per_thread(2).unwrap_err();
        assert!(err.thread >= 2, "{err:?}");
        assert_eq!(err.num_threads, 2);
        let msg = err.to_string();
        assert!(msg.contains("thread"), "{msg}");
        assert!(msg.contains("2 pool threads"), "{msg}");
        // The panicking wrapper carries the same diagnostic.
        let panic = std::panic::catch_unwind(|| rot.committed_per_thread(2))
            .expect_err("must panic on out-of-range thread id");
        let text = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("pool threads"), "panic message: {text}");
        // In-range accounting still works on the same rotation.
        assert_eq!(rot.try_committed_per_thread(4).unwrap().len(), 4);
    }

    #[test]
    fn fastsim_runner_extrapolates_and_stays_deterministic() {
        let run = |fast: bool| {
            let mut r = runner();
            if fast {
                r.set_fastsim(Some(FastSimPolicy::with_threshold(0.25)));
            }
            let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
            let rots = r.run_schedule(&s, 40);
            let cycles: u64 = rots.iter().map(|rot| rot.cycles()).sum();
            let extrapolated = r
                .fastsim_counters()
                .map(|c| c.extrapolated_slices)
                .unwrap_or(0);
            (rots, cycles, extrapolated)
        };
        let (rots_a, cycles_a, extrap_a) = run(true);
        let (rots_b, cycles_b, extrap_b) = run(true);
        let (_, cycles_detail, extrap_detail) = run(false);
        // Same simulated-cycle coverage either way, and the fast run is
        // byte-reproducible.
        assert_eq!(cycles_a, cycles_detail);
        assert_eq!(cycles_a, cycles_b);
        assert_eq!(rots_a, rots_b);
        assert_eq!(extrap_a, extrap_b);
        assert_eq!(extrap_detail, 0);
        assert!(
            extrap_a > 0,
            "a steady 40-rotation run must lock phases and extrapolate"
        );
    }

    #[test]
    fn fastsim_off_is_byte_identical_with_plain_runner() {
        // `set_fastsim(None)` after enabling must return to full detail.
        let mut a = runner();
        let mut b = runner();
        b.set_fastsim(Some(FastSimPolicy::default()));
        b.set_fastsim(None);
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        assert_eq!(a.run_schedule(&s, 3), b.run_schedule(&s, 3));
        assert!(b.fastsim_counters().is_none());
    }

    #[test]
    fn schedule_makes_fair_progress() {
        let mut r = runner();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let rots = r.run_schedule(&s, 4);
        let mut committed = [0u64; 4];
        for rot in &rots {
            for (t, c) in rot.committed_per_thread(4).iter().enumerate() {
                committed[t] += c;
            }
        }
        // Every job was scheduled the same number of cycles.
        assert!(committed.iter().all(|&c| c > 0));
    }
}

//! Hierarchical symbiosis (§7): choosing how many hardware contexts each
//! multithreaded job receives.
//!
//! "SOS could implement symbiosis at 2 levels by deciding which jobs to
//! coschedule and then deciding how many contexts to give multithreaded
//! jobs." This module enumerates the context *allocations* for the
//! multithreaded jobs of a jobmix, samples schedules for each allocation, and
//! lets the Score predictor pick among all (allocation, schedule) pairs.
//!
//! The weighted-speedup denominator follows the paper's extension: for a
//! multithreaded job it is "the issue rate of the job running alone, with no
//! other jobs in the coschedule" — measured once at the job's full thread
//! count, so allocations are compared on equal terms.

use crate::enumerate::sample_distinct;
use crate::job::JobPool;
use crate::predictor::PredictorKind;
use crate::runner::Runner;
use crate::sample::ScheduleSample;
use crate::schedule::Schedule;
use crate::sos::SosConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smtsim::MachineConfig;
use workloads::jobmix::hierarchical_mix;
use workloads::JobSpec;

/// One evaluated (allocation, schedule) pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AllocationOutcome {
    /// Threads given to each job (same order as the jobmix).
    pub threads_per_job: Vec<usize>,
    /// The schedule's paper notation.
    pub notation: String,
    /// Sample-phase counters.
    pub sample: ScheduleSample,
    /// Weighted speedup observed during the sample phase (comparable across
    /// allocations because the §7 denominators are fixed per job).
    pub sample_ws: f64,
    /// Symbios-phase weighted speedup (per-job terms, §7 extension).
    pub ws: f64,
}

/// Result of a hierarchical-symbiosis evaluation at one SMT level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierReport {
    /// The SMT level.
    pub smt: usize,
    /// Every evaluated (allocation, schedule) pair.
    pub outcomes: Vec<AllocationOutcome>,
    /// Index the Score predictor picked from the samples.
    pub score_pick: usize,
}

impl HierReport {
    /// Best symbios WS among the outcomes.
    pub fn best_ws(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.ws)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Worst symbios WS among the outcomes.
    pub fn worst_ws(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.ws)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean symbios WS (what a random/oblivious choice would get).
    pub fn average_ws(&self) -> f64 {
        self.outcomes.iter().map(|o| o.ws).sum::<f64>() / self.outcomes.len().max(1) as f64
    }

    /// WS of the Score-predicted pick.
    pub fn picked_ws(&self) -> f64 {
        self.outcomes[self.score_pick].ws
    }

    /// Percent improvement of the pick over the average (Figure 4's
    /// "vs. average" bar).
    pub fn improvement_over_average(&self) -> f64 {
        100.0 * (self.picked_ws() - self.average_ws()) / self.average_ws()
    }

    /// Percent improvement of the pick over the worst (Figure 4's
    /// "vs. worst" bar).
    pub fn improvement_over_worst(&self) -> f64 {
        100.0 * (self.picked_ws() - self.worst_ws()) / self.worst_ws()
    }
}

/// Enumerates the thread allocations for a jobmix: every multithreaded job
/// may receive 1..=its declared thread count; single-threaded jobs always
/// get 1.
pub fn allocations(specs: &[JobSpec]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for spec in specs {
        let choices: Vec<usize> = if spec.threads > 1 {
            (1..=spec.threads).collect()
        } else {
            vec![1]
        };
        let mut next = Vec::with_capacity(out.len() * choices.len());
        for prefix in &out {
            for &c in &choices {
                let mut p = prefix.clone();
                p.push(c);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

/// Applies an allocation to a jobmix, producing the specs actually built.
pub fn apply_allocation(specs: &[JobSpec], alloc: &[usize]) -> Vec<JobSpec> {
    assert_eq!(specs.len(), alloc.len(), "one allocation entry per job");
    specs
        .iter()
        .zip(alloc)
        .map(|(s, &k)| {
            let mut s = s.clone();
            assert!(k >= 1 && k <= s.threads.max(1), "allocation out of range");
            s.threads = k;
            s
        })
        .collect()
}

/// Reference solo rate per *job*: the aggregate IPC of the job running alone
/// at its full thread count.
fn job_solo_rates(specs: &[JobSpec], smt: usize, cfg: &SosConfig) -> Vec<f64> {
    let pool = JobPool::from_specs(specs, cfg.seed);
    let contexts = smt.max(specs.iter().map(|s| s.threads).max().unwrap_or(1));
    let mut runner = Runner::new(
        MachineConfig::alpha21264_like(contexts),
        pool,
        5_000_000 / cfg.cycle_scale.max(1),
    );
    let per_thread = runner.calibrate_solo(cfg.calibration_cycles, cfg.calibration_cycles);
    runner
        .pool()
        .groups()
        .iter()
        .map(|g| g.iter().map(|&t| per_thread.rate(t)).sum::<f64>().max(1e-6))
        .collect()
}

/// Evaluates hierarchical symbiosis for the paper's jobmix at `smt_level`
/// (Table 1's "SMT level" rows), trying `schedules_per_allocation` schedules
/// for every context allocation.
///
/// # Panics
/// Panics if the paper defines no hierarchical jobmix for `smt_level`
/// (only 2, 3, 4, and 6 exist).
pub fn evaluate_hierarchical(
    smt_level: usize,
    schedules_per_allocation: usize,
    cfg: &SosConfig,
) -> HierReport {
    let specs = hierarchical_mix(smt_level)
        .unwrap_or_else(|| panic!("no hierarchical jobmix at SMT level {smt_level}"));
    evaluate_hierarchical_mix(&specs, smt_level, schedules_per_allocation, cfg)
}

/// Evaluates hierarchical symbiosis for an arbitrary jobmix.
pub fn evaluate_hierarchical_mix(
    specs: &[JobSpec],
    smt_level: usize,
    schedules_per_allocation: usize,
    cfg: &SosConfig,
) -> HierReport {
    let solo_jobs = job_solo_rates(specs, smt_level, cfg);
    let timeslice = 5_000_000 / cfg.cycle_scale.max(1);
    let symbios_cycles = 2_000_000_000 / cfg.cycle_scale.max(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x41e2);

    let mut outcomes = Vec::new();
    for alloc in allocations(specs) {
        let alloc_specs = apply_allocation(specs, &alloc);
        let pool = JobPool::from_specs(&alloc_specs, cfg.seed);
        let x = pool.len();
        if x < smt_level {
            continue; // not enough threads to fill the machine
        }
        let mut runner = Runner::new(MachineConfig::alpha21264_like(smt_level), pool, timeslice);
        let y = smt_level;
        let z = y.min(x); // swap-all discipline
        let candidates = if x == y {
            vec![Schedule::new((0..x).collect(), y, y)]
        } else {
            sample_distinct(x, y, z.min(y), schedules_per_allocation.max(1), &mut rng)
        };
        // Warm the memory system so the first candidate's sample is not
        // dominated by cold-start misses.
        if let Some(first) = candidates.first() {
            let _ = runner.run_schedule(first, 1);
        }
        for schedule in candidates {
            let rots = runner.run_schedule(&schedule, 5);
            let sample = ScheduleSample::from_rotations(&schedule, &rots);
            // Sampled WS with the §7 per-job denominators.
            let sample_cycles: u64 = rots.iter().map(|r| r.cycles()).sum();
            let mut sampled_per_thread = vec![0u64; runner.pool().len()];
            for rot in &rots {
                for (t, c) in rot
                    .committed_per_thread(sampled_per_thread.len())
                    .iter()
                    .enumerate()
                {
                    sampled_per_thread[t] += c;
                }
            }
            let sample_ws: f64 = runner
                .pool()
                .groups()
                .iter()
                .zip(&solo_jobs)
                .map(|(g, &solo)| {
                    let agg: u64 = g.iter().map(|&t| sampled_per_thread[t]).sum();
                    (agg as f64 / sample_cycles as f64) / solo
                })
                .sum();
            // Symbios phase with per-job WS accounting.
            let rotation_cycles = schedule.slices_per_rotation() as u64 * timeslice;
            let rotations = (symbios_cycles / rotation_cycles).max(1) as usize;
            let rots = runner.run_schedule(&schedule, rotations);
            let cycles: u64 = rots.iter().map(|r| r.cycles()).sum();
            let mut per_thread = vec![0u64; runner.pool().len()];
            for rot in &rots {
                for (t, c) in rot
                    .committed_per_thread(per_thread.len())
                    .iter()
                    .enumerate()
                {
                    per_thread[t] += c;
                }
            }
            let ws: f64 = runner
                .pool()
                .groups()
                .iter()
                .zip(&solo_jobs)
                .map(|(g, &solo)| {
                    let agg: u64 = g.iter().map(|&t| per_thread[t]).sum();
                    (agg as f64 / cycles as f64) / solo
                })
                .sum();
            outcomes.push(AllocationOutcome {
                threads_per_job: alloc.clone(),
                notation: schedule.paper_notation(),
                sample,
                sample_ws,
                ws,
            });
        }
    }
    assert!(
        !outcomes.is_empty(),
        "no feasible allocation for SMT level {smt_level}"
    );
    let samples: Vec<ScheduleSample> = outcomes.iter().map(|o| o.sample.clone()).collect();
    let sample_ws: Vec<f64> = outcomes.iter().map(|o| o.sample_ws).collect();
    let score_pick = hier_choose(&samples, &sample_ws);
    HierReport {
        smt: smt_level,
        outcomes,
        score_pick,
    }
}

/// The predictor used for hierarchical choices: a Score-style vote in which
/// the *sampled weighted speedup* holds an absolute majority. Raw IPC cannot
/// compare allocations (more threads always raise aggregate IPC even when
/// per-job progress falls), and conflict-based predictors systematically
/// favor allocations that starve parallel jobs (an idle thread conflicts on
/// nothing). Weighted speedup is the §7-normalized currency the hierarchical
/// scheduler already has the solo rates to compute.
pub fn hier_choose(samples: &[ScheduleSample], sample_ws: &[f64]) -> usize {
    assert_eq!(samples.len(), sample_ws.len(), "one sampled WS per outcome");
    let n = samples.len();
    let mut votes = vec![0.0f64; n];
    votes[crate::predictor::argmax(sample_ws)] += 7.0;
    for voter in [
        PredictorKind::Dcache,
        PredictorKind::Fq,
        PredictorKind::Fp,
        PredictorKind::Sum2,
        PredictorKind::Balance,
        PredictorKind::Composite,
    ] {
        votes[voter.choose(samples)] += 1.0;
    }
    // Tie-break on sampled WS.
    let max = votes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut best = 0;
    let mut best_ws = f64::NEG_INFINITY;
    for i in 0..n {
        if votes[i] >= max - 1e-9 && sample_ws[i] > best_ws {
            best = i;
            best_ws = sample_ws[i];
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::jobmix::SyncStyle;
    use workloads::Benchmark;

    fn sample_with_ipc(ipc: f64, fq: f64) -> ScheduleSample {
        ScheduleSample {
            notation: format!("ipc{ipc}"),
            ipc,
            allconf: 100.0,
            dcache: 95.0,
            fq,
            fp: fq,
            sum2: 2.0 * fq,
            diversity: 1.0,
            balance: 0.2,
        }
    }

    #[test]
    fn hier_choose_weights_sampled_ws_over_quiet_conflicts() {
        // Outcome 0: starved parallel job — very low conflicts, low WS.
        // Outcome 1: busy machine — higher conflicts, much higher WS.
        let samples = vec![sample_with_ipc(0.8, 1.0), sample_with_ipc(2.4, 20.0)];
        assert_eq!(
            hier_choose(&samples, &[0.9, 1.6]),
            1,
            "sampled-WS weighting must beat conflict-quietness"
        );
    }

    #[test]
    fn hier_choose_penalizes_overallocation() {
        // Raw IPC is higher for outcome 0 (more threads), but per-job
        // progress (WS) is worse — the §7 trap the chooser must avoid.
        let samples = vec![sample_with_ipc(2.8, 10.0), sample_with_ipc(2.2, 10.0)];
        assert_eq!(hier_choose(&samples, &[1.1, 1.4]), 1);
    }

    #[test]
    fn hier_choose_ties_break_on_sampled_ws() {
        let samples = vec![sample_with_ipc(1.0, 5.0), sample_with_ipc(1.0, 5.0)];
        assert_eq!(hier_choose(&samples, &[1.2, 1.5]), 1);
    }

    #[test]
    fn allocations_enumerate_mt_choices() {
        let specs = vec![
            JobSpec::single(Benchmark::Cg),
            JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight),
            JobSpec::single(Benchmark::Ep),
        ];
        let allocs = allocations(&specs);
        assert_eq!(allocs, vec![vec![1, 1, 1], vec![1, 2, 1]]);
    }

    #[test]
    fn allocations_multiply_across_mt_jobs() {
        let specs = vec![
            JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight),
            JobSpec::parallel(Benchmark::Ep, 3, SyncStyle::None),
        ];
        assert_eq!(allocations(&specs).len(), 6);
    }

    #[test]
    fn apply_allocation_sets_thread_counts() {
        let specs = vec![JobSpec::parallel(Benchmark::Ep, 3, SyncStyle::None)];
        let out = apply_allocation(&specs, &[2]);
        assert_eq!(out[0].threads, 2);
    }

    #[test]
    #[should_panic(expected = "allocation out of range")]
    fn apply_allocation_checks_range() {
        let specs = vec![JobSpec::single(Benchmark::Cg)];
        let _ = apply_allocation(&specs, &[2]);
    }

    #[test]
    fn hierarchical_smt2_end_to_end() {
        let cfg = SosConfig {
            cycle_scale: 50_000, // very fast
            calibration_cycles: 10_000,
            ..SosConfig::default()
        };
        let report = evaluate_hierarchical(2, 2, &cfg);
        assert_eq!(report.smt, 2);
        assert!(!report.outcomes.is_empty());
        assert!(report.best_ws() >= report.picked_ws() - 1e-12);
        assert!(report.picked_ws() >= report.worst_ws() - 1e-12);
        // Both allocations of mt_ARRAY must appear.
        let allocs: std::collections::HashSet<Vec<usize>> = report
            .outcomes
            .iter()
            .map(|o| o.threads_per_job.clone())
            .collect();
        assert!(allocs.len() >= 2, "{allocs:?}");
    }
}

//! The dynamic predictors of §5: guessing the best schedule from
//! sample-phase hardware counters.
//!
//! Each predictor turns the sampled [`ScheduleSample`]s into scores (higher
//! = predicted more symbiotic) and chooses a schedule. `Score` tallies votes
//! from all the other predictors, breaking ties by the relative magnitude of
//! predicted goodness, and is the paper's best overall performer.

use crate::sample::ScheduleSample;
use serde::{Deserialize, Serialize};

/// Guard against division by zero when normalizing conflict percentages.
const EPS: f64 = 1e-9;

/// The paper's ten dynamic predictors, plus the two learned predictors of
/// [`crate::learn`] (stateful; see [`PredictorKind::scores`] for how the
/// stateless score path handles them).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// High sampled IPC is good.
    Ipc,
    /// A low sum of conflict percentages over all shared resources is good.
    AllConf,
    /// A high L1 data-cache hit rate is good.
    Dcache,
    /// Low floating-point-queue conflicts are good.
    Fq,
    /// Low floating-point-unit conflicts are good.
    Fp,
    /// A low sum of FP-queue and FP-unit conflicts is good.
    Sum2,
    /// A diverse instruction mix (small |%FP − %int|) is good.
    Diversity,
    /// Low IPC variation between consecutive timeslices is good.
    Balance,
    /// The experimental fit combining smoothness and low conflicts (§5.2).
    Composite,
    /// Majority vote of all the other predictors.
    Score,
    /// The online ridge regressor of [`crate::learn`] (stateful; an
    /// eleventh predictor trained from each sample phase).
    Learned,
    /// The contextual bandit of [`crate::learn`] selecting among the ten
    /// paper predictors and the learned model per jobmix class.
    Bandit,
}

impl PredictorKind {
    /// All ten predictors, in the paper's Table 3 / Figure 2 order.
    pub const ALL: [PredictorKind; 10] = [
        PredictorKind::Ipc,
        PredictorKind::AllConf,
        PredictorKind::Dcache,
        PredictorKind::Fq,
        PredictorKind::Fp,
        PredictorKind::Sum2,
        PredictorKind::Diversity,
        PredictorKind::Balance,
        PredictorKind::Composite,
        PredictorKind::Score,
    ];

    /// All twelve predictor kinds: the paper's ten plus the learned model
    /// and the bandit selector of [`crate::learn`].
    pub const EXTENDED: [PredictorKind; 12] = [
        PredictorKind::Ipc,
        PredictorKind::AllConf,
        PredictorKind::Dcache,
        PredictorKind::Fq,
        PredictorKind::Fp,
        PredictorKind::Sum2,
        PredictorKind::Diversity,
        PredictorKind::Balance,
        PredictorKind::Composite,
        PredictorKind::Score,
        PredictorKind::Learned,
        PredictorKind::Bandit,
    ];

    /// The predictors that vote inside `Score`.
    pub const VOTERS: [PredictorKind; 9] = [
        PredictorKind::Ipc,
        PredictorKind::AllConf,
        PredictorKind::Dcache,
        PredictorKind::Fq,
        PredictorKind::Fp,
        PredictorKind::Sum2,
        PredictorKind::Diversity,
        PredictorKind::Balance,
        PredictorKind::Composite,
    ];

    /// The paper's name for the predictor.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Ipc => "IPC",
            PredictorKind::AllConf => "AllConf",
            PredictorKind::Dcache => "Dcache",
            PredictorKind::Fq => "FQ",
            PredictorKind::Fp => "FP",
            PredictorKind::Sum2 => "Sum2",
            PredictorKind::Diversity => "Diversity",
            PredictorKind::Balance => "Balance",
            PredictorKind::Composite => "Composite",
            PredictorKind::Score => "Score",
            PredictorKind::Learned => "Learned",
            PredictorKind::Bandit => "Bandit",
        }
    }

    /// Parses a predictor name (case-insensitive, covers all of
    /// [`EXTENDED`](Self::EXTENDED)).
    pub fn parse(s: &str) -> Option<PredictorKind> {
        let lower = s.trim().to_ascii_lowercase();
        PredictorKind::EXTENDED
            .into_iter()
            .find(|p| p.name().to_ascii_lowercase() == lower)
    }

    /// All valid predictor names, for CLI error messages
    /// (`"IPC, AllConf, …, Learned, Bandit"`).
    pub fn names() -> String {
        PredictorKind::EXTENDED
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Whether the predictor needs [`crate::learn::Learner`] state to make
    /// its real decision (the stateless [`scores`](Self::scores) path falls
    /// back to `Score`'s ranking for these).
    pub fn is_learned(self) -> bool {
        matches!(self, PredictorKind::Learned | PredictorKind::Bandit)
    }

    /// Scores every sampled schedule; higher = predicted more symbiotic.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn scores(self, samples: &[ScheduleSample]) -> Vec<f64> {
        assert!(!samples.is_empty(), "cannot predict from zero samples");
        match self {
            PredictorKind::Ipc => samples.iter().map(|s| s.ipc).collect(),
            PredictorKind::AllConf => samples.iter().map(|s| -s.allconf).collect(),
            PredictorKind::Dcache => samples.iter().map(|s| s.dcache).collect(),
            PredictorKind::Fq => samples.iter().map(|s| -s.fq).collect(),
            PredictorKind::Fp => samples.iter().map(|s| -s.fp).collect(),
            PredictorKind::Sum2 => samples.iter().map(|s| -s.sum2).collect(),
            PredictorKind::Diversity => samples.iter().map(|s| -s.diversity).collect(),
            PredictorKind::Balance => samples.iter().map(|s| -s.balance).collect(),
            PredictorKind::Composite => composite_scores(samples),
            PredictorKind::Score => vote_scores(samples),
            // The learned predictors are stateful (they live in
            // `crate::learn::Learner`); the stateless score path used by
            // callers that have no learner falls back to the paper's best
            // fixed predictor, which is also their documented cold-start
            // behavior.
            PredictorKind::Learned | PredictorKind::Bandit => vote_scores(samples),
        }
    }

    /// The index of the schedule this predictor picks (deterministic: ties go
    /// to the earliest candidate).
    ///
    /// ```
    /// use sos_core::predictor::PredictorKind;
    /// use sos_core::sample::ScheduleSample;
    /// let fast = ScheduleSample { notation: "01_23".into(), ipc: 3.0, allconf: 90.0,
    ///     dcache: 98.0, fq: 5.0, fp: 4.0, sum2: 9.0, diversity: 0.2, balance: 0.1 };
    /// let slow = ScheduleSample { ipc: 2.0, notation: "02_13".into(), ..fast.clone() };
    /// assert_eq!(PredictorKind::Ipc.choose(&[fast, slow]), 0);
    /// ```
    pub fn choose(self, samples: &[ScheduleSample]) -> usize {
        argmax(&self.scores(samples))
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The Composite predictor (§5.2): highest
/// `0.9 / MIN{FQ/lowestFQ, FP/lowestFP, SUM2/lowestSUM2} + 0.1 / Balance`,
/// where the `lowest` terms are the best values observed across the sampled
/// schedules. It weights smoothness (balance) most, with some weight on low
/// conflicts on the critical FP resources.
pub fn composite_scores(samples: &[ScheduleSample]) -> Vec<f64> {
    let low_fq = samples
        .iter()
        .map(|s| s.fq)
        .fold(f64::INFINITY, f64::min)
        .max(EPS);
    let low_fp = samples
        .iter()
        .map(|s| s.fp)
        .fold(f64::INFINITY, f64::min)
        .max(EPS);
    let low_sum2 = samples
        .iter()
        .map(|s| s.sum2)
        .fold(f64::INFINITY, f64::min)
        .max(EPS);
    samples
        .iter()
        .map(|s| {
            let ratios = [
                s.fq.max(EPS) / low_fq,
                s.fp.max(EPS) / low_fp,
                s.sum2.max(EPS) / low_sum2,
            ];
            let min_ratio = ratios.into_iter().fold(f64::INFINITY, f64::min);
            0.9 / min_ratio + 0.1 / s.balance.max(EPS)
        })
        .collect()
}

/// The Score predictor: each voter predictor casts one vote for its top
/// schedule; the schedule with the most votes wins. Ties are broken "by
/// relative magnitude of goodness predicted": the mean over voters of the
/// schedule's min-max-normalized score.
pub fn vote_scores(samples: &[ScheduleSample]) -> Vec<f64> {
    let n = samples.len();
    let mut votes = vec![0usize; n];
    let mut goodness = vec![0.0f64; n];
    for voter in PredictorKind::VOTERS {
        let scores = voter.scores(samples);
        votes[argmax(&scores)] += 1;
        let (lo, hi) = (
            scores.iter().copied().fold(f64::INFINITY, f64::min),
            scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        let span = (hi - lo).max(EPS);
        for (g, s) in goodness.iter_mut().zip(&scores) {
            *g += (s - lo) / span;
        }
    }
    // Major component: votes; tie-break: normalized goodness in [0, 1).
    votes
        .iter()
        .zip(&goodness)
        .map(|(&v, &g)| v as f64 + g / (PredictorKind::VOTERS.len() as f64 + 1.0))
        .collect()
}

/// Index of the maximum (first on ties). NaN never wins: NaN entries are
/// skipped entirely, and an all-NaN (or empty) slice returns 0, so a
/// poisoned score can never out-compare a finite one (mirrors the PR-2 NaN
/// guards in report/naive).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_val = f64::NEG_INFINITY;
    let mut found = false;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        if !found || x > best_val {
            best = i;
            best_val = x;
            found = true;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn sample(
        notation: &str,
        ipc: f64,
        allconf: f64,
        dcache: f64,
        fq: f64,
        fp: f64,
        diversity: f64,
        balance: f64,
    ) -> ScheduleSample {
        ScheduleSample {
            notation: notation.into(),
            ipc,
            allconf,
            dcache,
            fq,
            fp,
            sum2: fq + fp,
            diversity,
            balance,
        }
    }

    /// Three synthetic schedules with clearly different profiles.
    fn samples() -> Vec<ScheduleSample> {
        vec![
            // Schedule 0: high IPC, high conflicts, unbalanced.
            sample("a", 3.5, 150.0, 97.0, 30.0, 25.0, 0.2, 1.2),
            // Schedule 1: moderate everything, very smooth.
            sample("b", 3.2, 120.0, 97.5, 8.0, 12.0, 0.15, 0.1),
            // Schedule 2: low conflicts, best cache, middling balance.
            sample("c", 3.3, 100.0, 98.5, 6.0, 10.0, 0.18, 0.5),
        ]
    }

    #[test]
    fn simple_predictors_pick_their_extremes() {
        let s = samples();
        assert_eq!(PredictorKind::Ipc.choose(&s), 0);
        assert_eq!(PredictorKind::AllConf.choose(&s), 2);
        assert_eq!(PredictorKind::Dcache.choose(&s), 2);
        assert_eq!(PredictorKind::Fq.choose(&s), 2);
        assert_eq!(PredictorKind::Fp.choose(&s), 2);
        assert_eq!(PredictorKind::Sum2.choose(&s), 2);
        assert_eq!(PredictorKind::Diversity.choose(&s), 1);
        assert_eq!(PredictorKind::Balance.choose(&s), 1);
    }

    #[test]
    fn composite_prefers_smooth_low_conflict() {
        let s = samples();
        // Schedule 1's balance of 0.1 gives 0.1/0.1 = 1.0 plus a decent
        // conflict term; schedule 2 has min-ratio 1 (best conflicts) but
        // balance term only 0.2.
        assert_eq!(PredictorKind::Composite.choose(&s), 1);
    }

    #[test]
    fn score_is_majority_vote() {
        let s = samples();
        // Voters: IPC->0; AllConf,Dcache,FQ,FP,Sum2->2; Diversity,Balance,Composite->1.
        // Majority: schedule 2 with 5 votes.
        assert_eq!(PredictorKind::Score.choose(&s), 2);
        let scores = PredictorKind::Score.scores(&s);
        assert!(scores[2] > 5.0 - 1e-9 && scores[2] < 6.0);
    }

    #[test]
    fn vote_tiebreak_uses_goodness() {
        // Two schedules, each winning some votes; goodness decides.
        let s = vec![
            sample("a", 3.0, 100.0, 98.0, 10.0, 10.0, 0.1, 0.2),
            sample("b", 3.0, 100.0, 98.0, 10.0, 10.0, 0.1, 0.2),
        ];
        // Perfectly tied: argmax breaks to index 0 deterministically.
        assert_eq!(PredictorKind::Score.choose(&s), 0);
    }

    #[test]
    fn parse_round_trips() {
        for p in PredictorKind::EXTENDED {
            assert_eq!(PredictorKind::parse(p.name()), Some(p));
            assert_eq!(PredictorKind::parse(&p.name().to_uppercase()), Some(p));
            assert_eq!(PredictorKind::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(PredictorKind::parse("score"), Some(PredictorKind::Score));
        assert_eq!(
            PredictorKind::parse("  Bandit "),
            Some(PredictorKind::Bandit)
        );
        assert_eq!(PredictorKind::parse("bogus"), None);
    }

    #[test]
    fn names_lists_every_kind() {
        let names = PredictorKind::names();
        for p in PredictorKind::EXTENDED {
            assert!(names.contains(p.name()), "{names} missing {p}");
        }
    }

    #[test]
    fn learned_kinds_fall_back_to_vote_scores() {
        let s = samples();
        assert_eq!(
            PredictorKind::Learned.scores(&s),
            PredictorKind::Score.scores(&s)
        );
        assert_eq!(
            PredictorKind::Bandit.choose(&s),
            PredictorKind::Score.choose(&s)
        );
        assert!(PredictorKind::Learned.is_learned());
        assert!(PredictorKind::Bandit.is_learned());
        assert!(!PredictorKind::Score.is_learned());
    }

    #[test]
    fn zero_conflicts_do_not_panic() {
        let s = vec![
            sample("a", 2.0, 0.0, 100.0, 0.0, 0.0, 0.0, 0.0),
            sample("b", 1.0, 0.0, 100.0, 0.0, 0.0, 0.0, 0.0),
        ];
        for p in PredictorKind::ALL {
            let scores = p.scores(&s);
            assert!(scores.iter().all(|x| x.is_finite()), "{p}: {scores:?}");
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_samples_rejected() {
        let _ = PredictorKind::Ipc.scores(&[]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn argmax_nan_never_wins() {
        assert_eq!(argmax(&[f64::NAN, 1.0, 2.0]), 2);
        assert_eq!(argmax(&[1.0, f64::NAN, 0.5]), 0);
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), 0);
        assert_eq!(argmax(&[]), 0);
        // -inf is a real value and can still win over NaN.
        assert_eq!(argmax(&[f64::NAN, f64::NEG_INFINITY]), 1);
    }
}

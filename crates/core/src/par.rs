//! Order-preserving parallel map over OS threads.
//!
//! [`SosScheduler`](crate::sos::SosScheduler) evaluates independent candidate
//! schedules concurrently, and the experiment binaries fan out whole
//! experiments the same way. Both need one property above all: **results are
//! merged in input order regardless of the worker count**, so a parallel run
//! produces byte-identical reports to a serial one (the replay tests pin
//! `workers = 1` against `workers = N`).
//!
//! These helpers used to live in `sos_bench`; they moved here so the
//! scheduler can use them, and `sos_bench` re-exports them under the old
//! paths.

/// Runs `f` over `items` on a pool of OS threads (experiments and candidate
/// evaluations are independent and single-threaded, so this scales to the 13
/// paper configurations on a multicore host). The fan-out is capped at
/// [`std::thread::available_parallelism`], so oversubscription does not
/// distort per-experiment timing on small hosts. Results keep input order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    parallel_map_with_workers(items, workers, f)
}

/// [`parallel_map`] with an explicit worker count. Results keep input order
/// regardless of `workers`, so a run is reproducible across pool sizes — the
/// replay tests pin this by comparing `workers = 1` against `workers = N`.
pub fn parallel_map_with_workers<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![3u64, 1, 4, 1, 5], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = parallel_map_with_workers(items.clone(), 1, |x| x + 7);
        let pooled = parallel_map_with_workers(items, 8, |x| x + 7);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn parallel_map_handles_more_items_than_cores() {
        // Far more items than any host's parallelism: exercises the work
        // queue (each worker handles many items) and order preservation.
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(items.clone(), |x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }
}

//! Runs our predictor implementations over the paper's *own* Table 3 data
//! (the sample-phase counter values and symbios-phase weighted speedups the
//! paper reports for Jsb(6,3,3)) and checks that they reproduce the paper's
//! findings about which predictors work.

use smt_symbiosis::sos::predictor::PredictorKind;
use smt_symbiosis::sos::sample::ScheduleSample;

/// One Table 3 row: (schedule, IPC, AllConf, Dcache, FQ, FP, Sum2,
/// Diversity, Balance, symbios WS(t)).
type Table3Row = (&'static str, f64, f64, f64, f64, f64, f64, f64, f64, f64);

/// The paper's Table 3, verbatim.
#[rustfmt::skip]
const TABLE3: [Table3Row; 10] = [
    ("012_345", 3.007, 146.14, 97.5, 37.04, 17.36, 54.40, 0.15, 0.24, 1.38),
    ("013_245", 3.266, 146.60, 97.5,  9.68, 31.66, 41.34, 0.18, 0.10, 1.56),
    ("014_325", 2.865, 129.52, 97.5, 20.77, 16.74, 37.51, 0.17, 0.61, 1.57),
    ("015_342", 3.223, 147.72, 97.6,  9.06, 32.09, 41.15, 0.18, 0.86, 1.52),
    ("023_145", 3.321, 146.14, 98.1,  7.51, 28.93, 36.44, 0.18, 0.27, 1.59),
    ("024_315", 3.462, 140.40, 97.4,  8.60, 17.73, 26.33, 0.18, 0.21, 1.60),
    ("025_341", 3.453, 140.07, 97.4,  6.69, 16.82, 23.51, 0.17, 0.55, 1.55),
    ("034_125", 3.280, 140.52, 97.6,  7.61, 22.73, 30.34, 0.18, 1.34, 1.53),
    ("035_124", 3.333, 139.82, 97.4,  6.42, 21.70, 28.12, 0.17, 0.52, 1.58),
    ("045_123", 3.532, 158.45, 97.9,  6.80, 31.02, 37.82, 0.16, 0.13, 1.59),
];

fn samples() -> Vec<ScheduleSample> {
    TABLE3
        .iter()
        .map(
            |&(n, ipc, allconf, dcache, fq, fp, sum2, diversity, balance, _)| ScheduleSample {
                notation: n.into(),
                ipc,
                allconf,
                dcache,
                fq,
                fp,
                sum2,
                diversity,
                balance,
            },
        )
        .collect()
}

fn ws_of_pick(p: PredictorKind) -> f64 {
    TABLE3[p.choose(&samples())].9
}

const BEST_WS: f64 = 1.60;
const WORST_WS: f64 = 1.38;

#[test]
fn ipc_dcache_fq_land_within_two_percent_of_best() {
    // "IPC, Dcache, FQ, Composite, and Score all achieved within 2% of the
    // best schedule."
    for p in [PredictorKind::Ipc, PredictorKind::Dcache, PredictorKind::Fq] {
        let ws = ws_of_pick(p);
        assert!(
            ws >= BEST_WS * 0.98,
            "{p} picked WS {ws}, not within 2% of best {BEST_WS}"
        );
    }
}

#[test]
fn diversity_picks_the_worst_schedule_on_paper_data() {
    // "all but one of the predictors (Diversity) avoided the worst schedule."
    assert_eq!(ws_of_pick(PredictorKind::Diversity), WORST_WS);
}

#[test]
fn every_other_predictor_avoids_the_worst() {
    for p in PredictorKind::ALL {
        if p == PredictorKind::Diversity {
            continue;
        }
        let ws = ws_of_pick(p);
        assert!(
            ws > WORST_WS,
            "{p} should avoid the worst schedule, got WS {ws}"
        );
    }
}

#[test]
fn all_picks_beat_or_match_the_sample_average() {
    let avg: f64 = TABLE3.iter().map(|r| r.9).sum::<f64>() / 10.0;
    // On the paper's data, the strong predictors clear the average (1.547).
    for p in [
        PredictorKind::Ipc,
        PredictorKind::Dcache,
        PredictorKind::Fq,
        PredictorKind::Score,
    ] {
        let ws = ws_of_pick(p);
        assert!(ws >= avg, "{p}: WS {ws} below average {avg}");
    }
}

#[test]
fn score_is_a_majority_vote_over_the_paper_rows() {
    // Score must pick a schedule at least one voter picked.
    let s = samples();
    let score_pick = PredictorKind::Score.choose(&s);
    let voter_picks: Vec<usize> = PredictorKind::VOTERS.iter().map(|p| p.choose(&s)).collect();
    assert!(
        voter_picks.contains(&score_pick),
        "Score picked {score_pick}, voters picked {voter_picks:?}"
    );
}

#[test]
fn per_column_extremes_match_the_papers_bold_entries() {
    let s = samples();
    // The paper bolds the best value in each column.
    assert_eq!(s[PredictorKind::Ipc.choose(&s)].notation, "045_123");
    assert_eq!(s[PredictorKind::AllConf.choose(&s)].notation, "014_325");
    assert_eq!(s[PredictorKind::Dcache.choose(&s)].notation, "023_145");
    assert_eq!(s[PredictorKind::Fq.choose(&s)].notation, "035_124");
    assert_eq!(s[PredictorKind::Fp.choose(&s)].notation, "014_325");
    assert_eq!(s[PredictorKind::Sum2.choose(&s)].notation, "025_341");
    assert_eq!(s[PredictorKind::Diversity.choose(&s)].notation, "012_345");
    assert_eq!(s[PredictorKind::Balance.choose(&s)].notation, "013_245");
}

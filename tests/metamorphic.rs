//! Metamorphic properties of the schedule algebra and the paper's metrics:
//! relations that must hold between *pairs* of computations, no matter the
//! inputs. These catch bugs that single-run sanity checks cannot — an
//! accounting error that skews every run equally still breaks the relation
//! between a run and its transformed twin.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use smt_symbiosis::sos::enumerate::{
    count_distinct, enumerate_all, random_schedule, sample_distinct,
};
use smt_symbiosis::sos::runner::{RotationStats, Runner};
use smt_symbiosis::sos::sample::ScheduleSample;
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::sos::ws::{weighted_speedup, weighted_speedup_subset, SoloRates};
use smt_symbiosis::sos::JobPool;
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;
use std::collections::HashMap;

/// A per-thread workload: committed instructions and a positive solo IPC.
fn thread_vec() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..2_000_000, 0.05f64..4.0), 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WS is a sum over jobs, so relabeling the jobs must not change it:
    /// permute (committed, solo) pairs together and WS(t) stays fixed.
    #[test]
    fn ws_is_invariant_under_thread_permutation(
        threads in thread_vec(),
        perm_seed in any::<u64>(),
        cycles in 1_000u64..2_000_000,
    ) {
        let base = {
            let committed: Vec<u64> = threads.iter().map(|t| t.0).collect();
            let solo = SoloRates::new(threads.iter().map(|t| t.1).collect());
            weighted_speedup(&committed, cycles, &solo)
        };
        let mut shuffled = threads.clone();
        shuffled.shuffle(&mut SmallRng::seed_from_u64(perm_seed));
        let permuted = {
            let committed: Vec<u64> = shuffled.iter().map(|t| t.0).collect();
            let solo = SoloRates::new(shuffled.iter().map(|t| t.1).collect());
            weighted_speedup(&committed, cycles, &solo)
        };
        // Summation order changes, so allow float round-off but nothing more.
        prop_assert!((base - permuted).abs() <= 1e-9 * base.abs().max(1.0),
            "WS changed under permutation: {base} vs {permuted}");
    }

    /// The generalized reorder law for the subset form: reordering the
    /// (thread, committed) pairs of a coschedule leaves its WS unchanged.
    #[test]
    fn ws_subset_is_invariant_under_reordering(
        threads in thread_vec(),
        perm_seed in any::<u64>(),
        cycles in 1_000u64..2_000_000,
    ) {
        let solo = SoloRates::new(threads.iter().map(|t| t.1).collect());
        let ids: Vec<usize> = (0..threads.len()).collect();
        let committed: Vec<u64> = threads.iter().map(|t| t.0).collect();
        let base = weighted_speedup_subset(&ids, &committed, cycles, &solo);

        let mut pairs: Vec<(usize, u64)> = ids.iter().copied().zip(committed).collect();
        pairs.shuffle(&mut SmallRng::seed_from_u64(perm_seed));
        let (rids, rcommitted): (Vec<usize>, Vec<u64>) = pairs.into_iter().unzip();
        let permuted = weighted_speedup_subset(&rids, &rcommitted, cycles, &solo);
        prop_assert!((base - permuted).abs() <= 1e-9 * base.abs().max(1.0),
            "subset WS changed under reordering: {base} vs {permuted}");
    }
}

/// Every enumeration must match the paper's closed-form coschedule count
/// (Table 2): partitions `x!/((y!)^(x/y) (x/y)!)` for swap-all shapes with
/// `y | x`, circular orders `(x-1)!/2` otherwise.
#[test]
fn enumeration_count_matches_closed_form() {
    for (x, y, z) in [
        (4, 2, 2),
        (5, 2, 2),
        (6, 2, 2),
        (6, 3, 3),
        (6, 3, 1),
        (8, 4, 4),
    ] {
        let enumerated = enumerate_all(x, y, z);
        assert_eq!(
            enumerated.len() as u128,
            count_distinct(x, y, z),
            "Jmn({x},{y},{z})"
        );
        // All enumerated schedules really are distinct under tuple-set
        // identity.
        let keys: std::collections::HashSet<_> =
            enumerated.iter().map(Schedule::canonical_key).collect();
        assert_eq!(keys.len(), enumerated.len(), "Jmn({x},{y},{z})");
    }
}

/// Uniform random orders must hit every schedule-identity class of
/// `Jsb(6,3,3)` at close to the uniform rate: each of the 10 classes covers
/// the same number of thread orders, so class frequencies are a direct
/// uniformity check on `random_schedule`.
#[test]
fn random_schedules_cover_identity_classes_uniformly() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_c0de);
    let draws = 2_000usize;
    let mut counts: HashMap<_, usize> = HashMap::new();
    for _ in 0..draws {
        let s = random_schedule(6, 3, 3, &mut rng);
        *counts.entry(s.canonical_key()).or_default() += 1;
    }
    assert_eq!(
        counts.len() as u128,
        count_distinct(6, 3, 3),
        "2000 draws must reach all 10 classes"
    );
    // Expected 200 per class; [140, 260] is over four binomial standard
    // deviations out, and the fixed seed keeps the test deterministic.
    for (key, n) in counts {
        assert!(
            (140..=260).contains(&n),
            "class {key:?} drawn {n} times (expected ~200)"
        );
    }
}

/// `sample_distinct` must deliver exactly-distinct schedules under the
/// paper's notation equivalence, even from a much larger space.
#[test]
fn sampled_schedules_are_distinct_under_paper_identity() {
    let mut rng = SmallRng::seed_from_u64(42);
    let samples = sample_distinct(8, 4, 1, 50, &mut rng);
    assert_eq!(samples.len(), 50);
    let keys: std::collections::HashSet<_> = samples.iter().map(Schedule::canonical_key).collect();
    assert_eq!(
        keys.len(),
        50,
        "sampled schedules must be pairwise distinct"
    );
}

/// Condensing counters into a `ScheduleSample` must not depend on how the
/// slices are grouped into rotations: one rotation of 2N slices, two
/// rotations of N, and 2N single-slice rotations all carry the same
/// counters in the same order, so IPC, AllConf, and every other field must
/// be bit-equal.
#[test]
fn sample_is_invariant_under_rotation_regrouping() {
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Fp),
            JobSpec::single(Benchmark::Mg),
            JobSpec::single(Benchmark::Gcc),
            JobSpec::single(Benchmark::Go),
        ],
        3,
    );
    let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool, 4_000);
    let schedule = Schedule::new(vec![0, 1, 2, 3], 2, 2);
    let rotations = runner.run_schedule(&schedule, 2);
    let base = ScheduleSample::from_rotations(&schedule, &rotations);

    let merged = RotationStats {
        slices: rotations.iter().flat_map(|r| r.slices.clone()).collect(),
        tuples: rotations.iter().flat_map(|r| r.tuples.clone()).collect(),
    };
    assert_eq!(
        base,
        ScheduleSample::from_rotations(&schedule, &[merged]),
        "merging rotations must not change the sample"
    );

    let singles: Vec<RotationStats> = rotations
        .iter()
        .flat_map(|r| {
            r.slices
                .iter()
                .zip(&r.tuples)
                .map(|(slice, tuple)| RotationStats {
                    slices: vec![slice.clone()],
                    tuples: vec![tuple.clone()],
                })
        })
        .collect();
    assert_eq!(
        base,
        ScheduleSample::from_rotations(&schedule, &singles),
        "splitting every slice into its own rotation must not change the sample"
    );
}

//! Smoke tests for the `sos` command-line driver.

use std::process::Command;

fn sos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sos"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn schedules_enumerates_the_papers_ten() {
    let out = sos(&["schedules", "6", "3", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("10 distinct schedules"), "{text}");
    assert!(text.contains("012_345"), "{text}");
    assert!(text.contains("045_123"), "{text}");
}

#[test]
fn schedules_counts_large_spaces_without_listing() {
    let out = sos(&["schedules", "8", "4", "1"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2520 distinct schedules"), "{text}");
    assert!(!text.contains('_'), "large spaces are not listed: {text}");
}

#[test]
fn help_succeeds() {
    assert!(sos(&["help"]).status.success());
    assert!(sos(&[]).status.success());
}

#[test]
fn unknown_command_fails() {
    let out = sos(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unsupported_shape_rejected() {
    let out = sos(&["schedules", "4", "3", "2"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("swap-all") || err.contains("swap-one"),
        "{err}"
    );
}

#[test]
fn bad_experiment_label_rejected() {
    let out = sos(&["run", "Jxx(1,2,3)"]);
    assert_eq!(out.status.code(), Some(2));
}

//! Integration tests spanning all three crates: workloads feeding the
//! simulator under the SOS scheduler's control.

use smt_symbiosis::sos::job::JobPool;
use smt_symbiosis::sos::runner::Runner;
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::ExperimentSpec;
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;

fn quick_cfg() -> SosConfig {
    SosConfig {
        cycle_scale: 25_000,
        calibration_cycles: 12_000,
        ..SosConfig::default()
    }
}

#[test]
fn full_experiment_protocol_runs_and_orders_sanely() {
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
    let report = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
    assert_eq!(report.candidates.len(), 3);
    assert!(
        report.worst_ws() > 0.5,
        "even the worst schedule makes progress"
    );
    assert!(report.best_ws() < 4.0, "WS bounded by machine width");
    assert!(report.best_ws() >= report.average_ws());
    assert!(report.average_ws() >= report.worst_ws());
}

#[test]
fn experiment_is_deterministic_across_processes_inputs() {
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
    let a = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
    let b = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
    assert_eq!(a.symbios_ws, b.symbios_ws);
    assert_eq!(a.candidates, b.candidates);
}

#[test]
fn coscheduling_diverse_jobs_beats_time_sharing() {
    // FP (fp-heavy, high ILP) + GO (branchy integer): a diverse pair should
    // exceed WS 1 — the core premise of SMT coscheduling.
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Fp),
            JobSpec::single(Benchmark::Go),
        ],
        11,
    );
    let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000);
    let solo = runner.calibrate_solo(60_000, 60_000);
    let schedule = Schedule::new(vec![0, 1], 2, 2);
    let _ = runner.run_schedule(&schedule, 4); // warm up
    let rots = runner.run_schedule(&schedule, 20);
    let cycles: u64 = rots.iter().map(|r| r.cycles()).sum();
    let mut committed = vec![0u64; 2];
    for rot in &rots {
        for (t, c) in rot.committed_per_thread(2).iter().enumerate() {
            committed[t] += c;
        }
    }
    let ws = smt_symbiosis::sos::ws::weighted_speedup(&committed, cycles, &solo);
    assert!(
        ws > 1.1,
        "diverse coschedule should show real symbiosis, got {ws}"
    );
}

#[test]
fn schedule_choice_changes_throughput() {
    // Jsb(4,2,2): the schedule pairing FP+MG (two FP codes) and GCC+IS (two
    // memory-hungry integer codes) should differ measurably from a mixed one.
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
    let report = SosScheduler::evaluate_experiment(&spec, &quick_cfg());
    let spread = report.best_ws() / report.worst_ws();
    assert!(
        spread > 1.02,
        "schedules must differ by more than noise: spread {spread}"
    );
}

#[test]
fn umbrella_reexports_are_usable() {
    // The umbrella crate exposes all three layers.
    let cfg = smtsim::MachineConfig::alpha21264_like(2);
    assert_eq!(cfg.contexts, 2);
    let b = smt_symbiosis::workloads::Benchmark::parse("gcc").unwrap();
    assert_eq!(b.name(), "GCC");
    let spec: smt_symbiosis::sos::ExperimentSpec = "Jsb(6,3,3)".parse().unwrap();
    assert_eq!(spec.distinct_schedules(), 10);
}

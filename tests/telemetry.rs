//! Telemetry-subsystem integration tests: serde round-trips for the event
//! and metric models, event ordering/nesting across a real SOS run, and a
//! golden schema check for the Chrome trace exporter.

use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::telemetry::{
    self, chrome_trace_value, Attr, Event, EventPhase, Histogram, Metric, MetricKind, Snapshot,
};
use smt_symbiosis::sos::ExperimentSpec;
use smtsim::{ConflictCounters, ThreadStats};
use std::sync::Mutex;

/// The recorder is process-wide and the test harness is multi-threaded:
/// every test that touches the global recorder takes this lock.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn events_round_trip_in_every_phase() {
    for phase in [
        EventPhase::SpanStart,
        EventPhase::SpanEnd,
        EventPhase::Instant,
        EventPhase::Counter,
    ] {
        let e = Event {
            ts_cycles: 12_345,
            phase,
            track: "scheduler".into(),
            name: "sos.sample_phase".into(),
            attrs: vec![
                Attr::num("candidates", 10.0),
                Attr::text("spec", "Jsb(6,3,3)"),
            ],
        };
        assert_eq!(round_trip(&e), e, "{phase:?}");
    }
}

#[test]
fn metrics_and_snapshots_round_trip() {
    let mut h = Histogram::default();
    h.record(0);
    h.record(513);
    let metrics = vec![
        Metric {
            name: "c".into(),
            kind: MetricKind::Counter,
            counter: Some(42),
            gauge: None,
            histogram: None,
        },
        Metric {
            name: "g".into(),
            kind: MetricKind::Gauge,
            counter: None,
            gauge: Some(-1.25),
            histogram: None,
        },
        Metric {
            name: "h".into(),
            kind: MetricKind::Histogram,
            counter: None,
            gauge: None,
            histogram: Some(h),
        },
    ];
    let snap = Snapshot {
        events: vec![Event {
            ts_cycles: 7,
            phase: EventPhase::Instant,
            track: "opensys".into(),
            name: "opensys.arrival".into(),
            attrs: vec![],
        }],
        metrics,
    };
    assert_eq!(round_trip(&snap), snap);
}

#[test]
fn thread_stats_and_conflict_counters_round_trip() {
    let t = ThreadStats {
        committed: 123_456,
        ..Default::default()
    };
    assert_eq!(round_trip(&t), t);
    let c = ConflictCounters {
        int_queue: 9,
        fp_queue: 2,
        ..Default::default()
    };
    assert_eq!(round_trip(&c), c);
}

/// Index of the first event matching `(phase, name)`.
fn find(events: &[Event], phase: EventPhase, name: &str) -> usize {
    events
        .iter()
        .position(|e| e.phase == phase && e.name == name)
        .unwrap_or_else(|| panic!("no {phase:?} {name}"))
}

/// Index of the last event matching `(phase, name)`.
fn rfind(events: &[Event], phase: EventPhase, name: &str) -> usize {
    events.len()
        - 1
        - events
            .iter()
            .rev()
            .position(|e| e.phase == phase && e.name == name)
            .unwrap_or_else(|| panic!("no {phase:?} {name}"))
}

#[test]
fn sos_run_emits_well_nested_ordered_events() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    telemetry::enable();
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
    let cfg = SosConfig {
        cycle_scale: 20_000,
        calibration_cycles: 15_000,
        ..SosConfig::default()
    };
    let report = SosScheduler::evaluate_experiment(&spec, &cfg);
    telemetry::disable();
    let snap = telemetry::drain();
    telemetry::reset();
    let events = &snap.events;
    assert!(!events.is_empty());

    // Timestamps never go backwards: the recorder's clock is monotonic
    // within a run and occupancy samples are stamped inside their slice.
    for w in events.windows(2) {
        assert!(
            w[0].ts_cycles <= w[1].ts_cycles,
            "time went backwards: {:?} then {:?}",
            w[0],
            w[1]
        );
    }

    // Every span is balanced, per (track, name).
    let mut names: Vec<(&str, &str)> = events
        .iter()
        .filter(|e| e.phase == EventPhase::SpanStart)
        .map(|e| (e.track.as_str(), e.name.as_str()))
        .collect();
    names.dedup();
    for (track, name) in names {
        let count = |phase| {
            events
                .iter()
                .filter(|e| e.phase == phase && e.track == track && e.name == name)
                .count()
        };
        assert_eq!(
            count(EventPhase::SpanStart),
            count(EventPhase::SpanEnd),
            "unbalanced span {track}/{name}"
        );
    }

    // The sample phase nests inside the experiment span, and every
    // per-candidate span nests inside the sample phase.
    let exp_start = find(events, EventPhase::SpanStart, "sos.experiment");
    let exp_end = rfind(events, EventPhase::SpanEnd, "sos.experiment");
    let sp_start = find(events, EventPhase::SpanStart, "sos.sample_phase");
    let sp_end = rfind(events, EventPhase::SpanEnd, "sos.sample_phase");
    assert!(exp_start < sp_start && sp_start < sp_end && sp_end < exp_end);
    let cand_first = find(events, EventPhase::SpanStart, "sos.sample_candidate");
    let cand_last = rfind(events, EventPhase::SpanEnd, "sos.sample_candidate");
    assert!(sp_start < cand_first && cand_last < sp_end);

    // One sample-candidate span and one sample-result instant per candidate.
    let candidates = report.candidates.len();
    let count_named = |phase, name: &str| {
        events
            .iter()
            .filter(|e| e.phase == phase && e.name == name)
            .count()
    };
    assert_eq!(
        count_named(EventPhase::SpanStart, "sos.sample_candidate"),
        candidates
    );
    assert_eq!(
        count_named(EventPhase::Instant, "sos.sample_result"),
        candidates
    );
    assert_eq!(
        count_named(EventPhase::SpanStart, "sos.symbios_phase"),
        candidates
    );
    // One predictor-decision instant per predictor.
    assert_eq!(
        count_named(EventPhase::Instant, "sos.predictor_decision"),
        smt_symbiosis::sos::PredictorKind::ALL.len()
    );

    // The smtsim bridge recorded timeslices and conflict metrics.
    assert!(count_named(EventPhase::SpanStart, "smtsim.timeslice") > 0);
    assert!(snap.metrics.iter().any(|m| m.name == "smtsim.cycles"));
    assert!(snap.metrics.iter().any(|m| m.name == "sos.experiments"));
}

#[test]
fn chrome_trace_matches_golden_schema() {
    let events = vec![
        Event {
            ts_cycles: 500,
            phase: EventPhase::SpanStart,
            track: "scheduler".into(),
            name: "phase".into(),
            attrs: vec![Attr::text("spec", "J")],
        },
        Event {
            ts_cycles: 1_000,
            phase: EventPhase::Instant,
            track: "scheduler".into(),
            name: "tick".into(),
            attrs: vec![Attr::num("x", 1.5)],
        },
        Event {
            ts_cycles: 1_500,
            phase: EventPhase::SpanEnd,
            track: "scheduler".into(),
            name: "phase".into(),
            attrs: vec![],
        },
    ];
    let json = serde_json::to_string(&chrome_trace_value(&events)).unwrap();
    let golden = concat!(
        r#"{"traceEvents":["#,
        r#"{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"scheduler"}},"#,
        r#"{"name":"phase","cat":"scheduler","ph":"B","ts":1.0,"pid":1,"tid":1,"args":{"spec":"J"}},"#,
        r#"{"name":"tick","cat":"scheduler","ph":"i","ts":2.0,"pid":1,"tid":1,"s":"t","args":{"x":1.5}},"#,
        r#"{"name":"phase","cat":"scheduler","ph":"E","ts":3.0,"pid":1,"tid":1}"#,
        r#"],"displayTimeUnit":"ms","otherData":{"clockMHz":500}}"#,
    );
    assert_eq!(json, golden);
}

#[test]
fn disabled_telemetry_records_nothing_during_sos_run() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    assert!(!telemetry::is_enabled());
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().unwrap();
    let cfg = SosConfig {
        cycle_scale: 40_000,
        calibration_cycles: 10_000,
        ..SosConfig::default()
    };
    let _ = SosScheduler::evaluate_experiment(&spec, &cfg);
    let snap = telemetry::drain();
    assert!(snap.events.is_empty());
    assert!(snap.metrics.is_empty());
}

//! Tests that pin the analytically-reproducible artifacts of the paper:
//! Table 2 and the structural claims of §3.

use smt_symbiosis::sos::enumerate::{count_distinct, enumerate_all};
use smt_symbiosis::sos::ExperimentSpec;

#[test]
fn table2_column2_exactly() {
    let expected: [(&str, u128); 13] = [
        ("Jsb(4,2,2)", 3),
        ("Jsb(5,2,2)", 12),
        ("Jsb(5,2,1)", 12),
        ("Jpb(10,2,2)", 945),
        ("J2pb(10,2,2)", 945),
        ("Jsb(6,3,3)", 10),
        ("Jsb(6,3,1)", 60),
        ("Jsl(6,3,1)", 60),
        ("Jsb(8,4,4)", 35),
        ("Jsb(8,4,1)", 2520),
        ("Jsl(8,4,1)", 2520),
        ("Jsb(12,4,4)", 5775),
        ("Jsb(12,6,6)", 462),
    ];
    for (label, count) in expected {
        let spec: ExperimentSpec = label.parse().unwrap();
        assert_eq!(spec.distinct_schedules(), count, "{label}");
    }
}

#[test]
fn table2_column3_to_the_million() {
    let expected: [(&str, u64); 13] = [
        ("Jsb(4,2,2)", 30),
        ("Jsb(5,2,2)", 250),
        ("Jsb(5,2,1)", 250),
        ("Jpb(10,2,2)", 250),
        ("J2pb(10,2,2)", 250),
        ("Jsb(6,3,3)", 100),
        ("Jsb(6,3,1)", 300),
        ("Jsl(6,3,1)", 100),
        ("Jsb(8,4,4)", 100),
        ("Jsb(8,4,1)", 400),
        ("Jsl(8,4,1)", 100),
        ("Jsb(12,4,4)", 150),
        ("Jsb(12,6,6)", 100),
    ];
    for (label, millions) in expected {
        let spec: ExperimentSpec = label.parse().unwrap();
        let got = (spec.paper_sample_cycles() as f64 / 1e6).round() as u64;
        assert_eq!(got, millions, "{label}");
    }
}

#[test]
fn all_thirteen_jobmixes_have_computational_diversity() {
    // Each jobmix must combine FP-heavy and integer-heavy codes, as §3 says.
    for spec in ExperimentSpec::all_paper_experiments() {
        let mix = spec.jobmix();
        let has_fp = mix
            .iter()
            .any(|j| j.benchmark.profile().mix.fp_fraction() > 0.3);
        let has_int = mix
            .iter()
            .any(|j| j.benchmark.profile().mix.fp_fraction() == 0.0);
        assert!(has_fp && has_int, "{spec}: jobmix lacks diversity");
    }
}

#[test]
fn exhaustive_enumerations_match_closed_forms() {
    for (x, y, z) in [(4, 2, 2), (5, 2, 2), (6, 3, 3), (6, 3, 1), (8, 4, 4)] {
        assert_eq!(
            enumerate_all(x, y, z).len() as u128,
            count_distinct(x, y, z),
            "({x},{y},{z})"
        );
    }
}

#[test]
fn schedule_identity_matches_paper_convention() {
    use smt_symbiosis::sos::schedule::Schedule;
    // "We consider jobschedules to be identical if they coschedule the same
    // tuples regardless of the order in which the tuples are scheduled."
    let a = Schedule::new(vec![0, 1, 2, 3, 4, 5], 3, 3); // 012_345
    let b = Schedule::new(vec![5, 4, 3, 2, 1, 0], 3, 3); // 345_012 reversed
    assert_eq!(a.canonical_key(), b.canonical_key());
}

//! The evaluation cache must be invisible in the results: a warm-cache run
//! has to produce byte-identical reports to a cold run, and a disk store
//! that is stale or corrupt must be ignored, never trusted.
//!
//! The process-wide cache is shared test-global state, so every test that
//! touches it holds `CACHE_LOCK` and restores the disabled/empty state
//! before releasing it (the rest of the suite assumes uncached behavior).

use smt_symbiosis::sos::cache::{self, EvalCache, Payload};
use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::ws::SoloRates;
use smt_symbiosis::sos::ExperimentSpec;
use std::sync::Mutex;

static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_cfg() -> SosConfig {
    SosConfig {
        cycle_scale: 50_000,
        calibration_cycles: 5_000,
        ..SosConfig::default()
    }
}

fn spec() -> ExperimentSpec {
    "Jsb(4,2,2)".parse().unwrap()
}

/// Unique scratch directory for a disk-store test.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sos-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_cache_rerun_is_byte_identical_to_cold_run() {
    let _guard = lock();
    cache::disable();
    cache::clear();
    let cfg = quick_cfg();
    let spec = spec();

    let cold = SosScheduler::evaluate_experiment(&spec, &cfg);
    let cold_json = serde_json::to_string(&cold).unwrap();

    cache::enable();
    let prime = SosScheduler::evaluate_experiment(&spec, &cfg);
    let after_prime = cache::stats();
    assert!(
        after_prime.misses > 0,
        "priming must populate the cache: {after_prime:?}"
    );
    let warm = SosScheduler::evaluate_experiment(&spec, &cfg);
    let after_warm = cache::stats();

    cache::disable();
    cache::clear();

    assert_eq!(
        cold_json,
        serde_json::to_string(&prime).unwrap(),
        "a caching (but cold) run must not change the report"
    );
    assert_eq!(
        cold_json,
        serde_json::to_string(&warm).unwrap(),
        "a warm-cache rerun must be byte-identical to the cold run"
    );
    assert!(
        after_warm.hits > after_prime.hits,
        "the rerun must be served from the cache: {after_prime:?} -> {after_warm:?}"
    );
    assert_eq!(
        after_warm.misses, after_prime.misses,
        "the rerun must not fall through to the simulator for any cached \
         entry: {after_prime:?} -> {after_warm:?}"
    );
}

#[test]
fn warm_calibration_and_sampling_match_cold() {
    let _guard = lock();
    cache::disable();
    cache::clear();
    let cfg = quick_cfg();
    let spec = spec();
    let candidate = SosScheduler::candidates(&spec, &cfg)
        .into_iter()
        .next()
        .expect("Jsb(4,2,2) has candidates");

    let cold_solo = serde_json::to_string(SosScheduler::calibrate(&spec, &cfg).as_slice()).unwrap();
    let cold_rots =
        serde_json::to_string(&SosScheduler::sample_candidate(&spec, &cfg, &candidate)).unwrap();

    cache::enable();
    for _ in 0..2 {
        // First pass computes and stores, second is served from the cache;
        // both must serialize identically to the uncached run.
        let solo = SosScheduler::calibrate(&spec, &cfg);
        assert_eq!(cold_solo, serde_json::to_string(solo.as_slice()).unwrap());
        let rots = SosScheduler::sample_candidate(&spec, &cfg, &candidate);
        assert_eq!(cold_rots, serde_json::to_string(&rots).unwrap());
    }
    let stats = cache::stats();
    cache::disable();
    cache::clear();
    assert!(stats.hits >= 2, "second pass must hit: {stats:?}");
}

#[test]
fn disk_store_round_trips_entries() {
    let dir = scratch_dir("roundtrip");

    let writer = EvalCache::new();
    writer.enable();
    assert_eq!(writer.attach_disk(&dir).unwrap(), 0, "fresh store is empty");
    let rates = writer.solo_rates("solo|k1", || SoloRates::new(vec![1.25, 2.5]));
    assert_eq!(rates.as_slice(), &[1.25, 2.5]);

    let reader = EvalCache::new();
    reader.enable();
    assert_eq!(reader.attach_disk(&dir).unwrap(), 1, "entry must reload");
    let reloaded = reader.solo_rates("solo|k1", || panic!("must be served from disk"));
    assert_eq!(reloaded.as_slice(), &[1.25, 2.5]);
    assert_eq!(reader.stats().hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_header_invalidates_the_whole_store() {
    let dir = scratch_dir("stale-header");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(cache::STORE_FILE);
    // A parseable header from a different build, followed by an entry that
    // would validate — none of it may load.
    std::fs::write(
        &path,
        "{\"key_schema\":999,\"crate_version\":\"0.0.0-other\"}\n\
         {\"key\":\"solo|k1\",\"payload\":{\"solo\":[1.0],\"sample\":null,\"symbios\":null,\"bench_ipc\":null}}\n",
    )
    .unwrap();

    let c = EvalCache::new();
    c.enable();
    assert_eq!(
        c.attach_disk(&dir).unwrap(),
        0,
        "entries written under a different header must be discarded"
    );
    let rates = c.solo_rates("solo|k1", || SoloRates::new(vec![9.0]));
    assert_eq!(rates.as_slice(), &[9.0], "stale entry must not be served");
    // The file was rewritten under the current header: a second cache sees
    // the store as valid and loads the freshly written entry.
    let again = EvalCache::new();
    again.enable();
    assert_eq!(again.attach_disk(&dir).unwrap(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_lines_are_skipped_not_trusted() {
    let dir = scratch_dir("corrupt-entry");

    let writer = EvalCache::new();
    writer.enable();
    writer.attach_disk(&dir).unwrap();
    let _ = writer.solo_rates("solo|good", || SoloRates::new(vec![3.0]));

    // Splice garbage between the header and the valid entry.
    let path = dir.join(cache::STORE_FILE);
    let contents = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "header + one entry: {contents:?}");
    lines.insert(1, "{not json at all");
    lines.insert(2, "{\"key\":\"missing-payload\"}");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let reader = EvalCache::new();
    reader.enable();
    assert_eq!(
        reader.attach_disk(&dir).unwrap(),
        1,
        "only the valid entry may load"
    );
    let rates = reader.solo_rates("solo|good", || panic!("valid entry must be served"));
    assert_eq!(rates.as_slice(), &[3.0]);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mistyped_disk_payload_is_recomputed() {
    let dir = scratch_dir("mistyped");

    let writer = EvalCache::new();
    writer.enable();
    writer.attach_disk(&dir).unwrap();
    // Store a symbios payload, then ask for solo rates under the same key.
    writer.insert(
        "solo|k1",
        Payload {
            symbios: Some(smt_symbiosis::sos::cache::SymbiosEval {
                committed: vec![1],
                cycles: 1,
            }),
            ..Payload::default()
        },
    );

    let reader = EvalCache::new();
    reader.enable();
    assert_eq!(reader.attach_disk(&dir).unwrap(), 1);
    let rates = reader.solo_rates("solo|k1", || SoloRates::new(vec![4.0]));
    assert_eq!(rates.as_slice(), &[4.0]);
    assert_eq!(reader.stats().hits, 0);
    assert_eq!(reader.stats().misses, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

//! Accuracy and determinism guarantees of phase-aware fast simulation
//! (`smtsim::fastsim`): the extrapolator may only trade simulation *time*,
//! never reproducibility and never more than the advertised error band.
//!
//! Three families of guarantees, mirroring the CI accuracy harness
//! (`fastsim-compare`) at test scale:
//!
//! 1. **Determinism** — a fast run is a pure function of the seed: repeated
//!    runs and runs executed under different `parallel_map` worker counts
//!    produce byte-identical slice streams and identical phase boundaries
//!    (lock/fallback counters).
//! 2. **Forced drift** — an abrupt workload change under a locked phase must
//!    be caught by the judged re-sample slice and demoted to full detail
//!    (fallback), not extrapolated through.
//! 3. **Metamorphic accuracy** — enabling fast-sim on a fig5/fig6-style
//!    scenario changes weighted speedup and mean response time by at most
//!    ±2% relative to the full-detail run it extrapolates.

use smtsim::fastsim::{tuple_key, FastSim, FastSimPolicy};
use smtsim::{MachineConfig, Processor};
use sos_core::job::JobPool;
use sos_core::online::{OnlineEngine, SchedulerKind};
use sos_core::opensys::{
    arrival_trace, calibrate_benchmarks, run_open_system_on_trace, OpenSystemConfig,
};
use sos_core::par::parallel_map_with_workers;
use sos_core::runner::Runner;
use sos_core::schedule::Schedule;
use sos_core::ws::weighted_speedup;
use workloads::jobmix::single_threaded_mix;
use workloads::{Benchmark, JobSpec};

const TIMESLICE: u64 = 5_000;

/// Relative error of `fast` against `detail`, as a fraction.
fn rel_err(fast: f64, detail: f64) -> f64 {
    if detail == 0.0 {
        return if fast == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (fast - detail).abs() / detail.abs()
}

/// One closed-system fast run (fig4-style rotation of the Table 1 8-job
/// mix), fingerprinted for determinism comparison: every per-slice counter
/// that downstream metrics consume, plus the phase boundaries the detector
/// found.
fn closed_fast_run(seed: u64, rotations: usize) -> (Vec<(u64, u64, u64)>, String) {
    let specs = single_threaded_mix(8).expect("Table 1 has an 8-job mix");
    let pool = JobPool::from_specs(&specs, seed);
    let threads = pool.len();
    let mut runner = Runner::new(MachineConfig::alpha21264_like(4), pool, TIMESLICE);
    runner.set_fastsim(Some(FastSimPolicy::default()));
    let schedule = Schedule::new((0..threads).collect(), 4, 4);
    let mut fingerprint = Vec::new();
    for rot in runner.run_schedule(&schedule, rotations) {
        for s in &rot.slices {
            let committed: u64 = s.threads.iter().map(|t| t.committed).sum();
            fingerprint.push((s.cycles, committed, s.cache.l2_misses));
        }
    }
    let counters = format!("{:?}", runner.fastsim_counters().expect("fast-sim enabled"));
    (fingerprint, counters)
}

#[test]
fn fast_runs_are_deterministic_across_runs_and_worker_counts() {
    let seed = 0xFA57_0001;
    let rotations = 30;
    let baseline = closed_fast_run(seed, rotations);
    assert!(
        baseline.1.contains("phase_locks: ") && !baseline.1.contains("phase_locks: 0"),
        "the scenario must actually lock phases, got {}",
        baseline.1
    );
    assert!(
        !baseline.1.contains("extrapolated_slices: 0"),
        "the scenario must actually extrapolate, got {}",
        baseline.1
    );

    // Same seed, repeated sequentially: identical slices and boundaries.
    assert_eq!(baseline, closed_fast_run(seed, rotations), "repeat run");

    // Same seed, executed inside worker pools of different sizes: the
    // phase detector is engine-local state, so parallelism of the harness
    // around it must not leak into the result.
    for workers in [1, 4] {
        let runs = parallel_map_with_workers(vec![seed; 3], workers, move |s| {
            closed_fast_run(s, rotations)
        });
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(
                run, &baseline,
                "run {i} under {workers} worker(s) diverged from baseline"
            );
        }
    }
}

#[test]
fn abrupt_workload_change_forces_fallback() {
    // Drive the detector through the Runner slice protocol by hand: lock a
    // phase on an FP-heavy pair, then swap in an integer/memory-bound pair
    // *under the same tuple key* — the judged re-sample slice must see the
    // signature break (fp_share alone collapses) and fall back to detail.
    let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
    let mut fs = FastSim::new(FastSimPolicy::default());
    let key = tuple_key([0u64, 1]);
    let mut fp_pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Fp),
            JobSpec::single(Benchmark::Swim),
        ],
        7,
    );
    let mut int_pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Go),
            JobSpec::single(Benchmark::Is),
        ],
        7,
    );

    let slice = |pool: &mut JobPool, cpu: &mut Processor, fs: &mut FastSim| {
        if let Some(stats) = fs.try_extrapolate(&key, TIMESLICE) {
            for r in pool.select_dyn(&[0, 1]) {
                if let Some(ts) = stats.thread(r.id()) {
                    r.skip_instructions(ts.committed);
                }
            }
        } else {
            let mut refs = pool.select_dyn(&[0, 1]);
            let stats = cpu.run_timeslice(&mut refs, TIMESLICE);
            let _ = fs.observe_detailed(&key, &stats);
        }
    };

    for _ in 0..40 {
        slice(&mut fp_pool, &mut cpu, &mut fs);
    }
    let before = *fs.counters();
    assert!(before.phase_locks >= 1, "FP phase must lock: {before:?}");
    assert!(
        before.extrapolated_slices >= 1,
        "FP phase must extrapolate: {before:?}"
    );
    assert_eq!(before.fallbacks, 0, "stationary phase must not fall back");

    // The workload changes abruptly under the locked phase.
    for _ in 0..150 {
        slice(&mut int_pool, &mut cpu, &mut fs);
        if fs.counters().fallbacks > 0 {
            break;
        }
    }
    let after = *fs.counters();
    assert!(
        after.fallbacks >= 1,
        "abrupt FP→int change must force a fallback: {after:?}"
    );
    // The new phase is allowed to re-lock — fallback demotes, it does not ban.
    assert!(
        after.detailed_slices > before.detailed_slices,
        "post-fallback slices must run detailed: {after:?}"
    );
}

#[test]
fn fast_mode_ws_is_within_two_percent_of_detail_closed_system() {
    // fig4-style closed rotation, where extrapolation coverage is high
    // (the same eight tuples recur every rotation): aggregate weighted
    // speedup of the fast run must stay within ±2% of full detail.
    let specs = single_threaded_mix(8).expect("Table 1 has an 8-job mix");
    let seed = 0xFA57_0002;
    let rotations = 40;
    let run = |fast: bool| {
        let pool = JobPool::from_specs(&specs, seed);
        let threads = pool.len();
        let mut runner = Runner::new(MachineConfig::alpha21264_like(4), pool, TIMESLICE);
        let solo = runner.calibrate_solo(TIMESLICE, TIMESLICE);
        if fast {
            runner.set_fastsim(Some(FastSimPolicy::default()));
        }
        let schedule = Schedule::new((0..threads).collect(), 4, 4);
        let mut committed = vec![0u64; threads];
        let mut cycles = 0u64;
        for rot in runner.run_schedule(&schedule, rotations) {
            for (t, c) in rot.committed_per_thread(threads).iter().enumerate() {
                committed[t] += c;
            }
            cycles += rot.cycles();
        }
        let extrap = runner
            .fastsim_counters()
            .map(|c| c.extrapolated_fraction())
            .unwrap_or(0.0);
        (weighted_speedup(&committed, cycles, &solo), extrap)
    };
    let (detail_ws, _) = run(false);
    let (fast_ws, extrap) = run(true);
    assert!(
        extrap > 0.5,
        "the accuracy claim is vacuous unless most cycles extrapolate, got {extrap:.3}"
    );
    let err = rel_err(fast_ws, detail_ws);
    assert!(
        err <= 0.02,
        "fast WS {fast_ws:.4} vs detail {detail_ws:.4}: {:.2}% > 2%",
        err * 100.0
    );
}

/// A fig5-style open-system scenario at debug-profile scale.
fn open_config() -> OpenSystemConfig {
    let mut cfg = OpenSystemConfig::scaled(2);
    cfg.mean_job_cycles = 150_000;
    cfg.mean_interarrival = 80_000;
    cfg.timeslice = 2_500;
    cfg.calibration_cycles = 6_000;
    cfg.num_jobs = 24;
    cfg.seed = 0xFA57_0003;
    cfg
}

#[test]
fn fast_mode_open_system_metrics_within_two_percent_of_detail() {
    // The open system (arrivals, departures, SOS sampling phases) bounds
    // extrapolation coverage structurally, but whatever *is* extrapolated
    // must not move the paper's metrics: weighted speedup (delivered
    // solo-work per cycle) and mean response within ±2% of full detail on
    // the identical arrival trace.
    let detail_cfg = open_config();
    let solo = calibrate_benchmarks(
        detail_cfg.smt,
        detail_cfg.calibration_cycles,
        detail_cfg.seed,
    );
    let trace = arrival_trace(&detail_cfg, &solo);
    let mut fast_cfg = detail_cfg.clone();
    fast_cfg.fastsim = Some(FastSimPolicy::with_threshold(0.05));

    let ws_of = |res: &sos_core::opensys::OpenSystemResult| {
        let solo_cycles: f64 = res
            .completed
            .iter()
            .map(|j| {
                let ipc = solo
                    .get(&j.arrival.benchmark)
                    .copied()
                    .unwrap_or(1.0)
                    .max(1e-6);
                j.arrival.instructions as f64 / ipc
            })
            .sum();
        solo_cycles / res.cycles.max(1) as f64
    };

    for kind in [SchedulerKind::Naive, SchedulerKind::Sos] {
        let detail = run_open_system_on_trace(kind, &detail_cfg, &trace);
        let fast = run_open_system_on_trace(kind, &fast_cfg, &trace);
        assert_eq!(detail.completed.len(), fast.completed.len(), "{kind:?}");
        let ws_err = rel_err(ws_of(&fast), ws_of(&detail));
        let rt_err = rel_err(fast.mean_response(), detail.mean_response());
        assert!(
            ws_err <= 0.02,
            "{kind:?}: fast WS off by {:.2}% (> 2%)",
            ws_err * 100.0
        );
        assert!(
            rt_err <= 0.02,
            "{kind:?}: fast mean response off by {:.2}% (> 2%)",
            rt_err * 100.0
        );
    }
}

#[test]
fn fast_mode_cluster_metrics_within_two_percent_of_detail() {
    // The sharded cluster runs one fast-sim detector per shard engine; the
    // same ±2% bound must hold for the cluster-wide response metric on an
    // identical trace and shard layout.
    use sos_core::cluster::{run_cluster_on_trace, ClusterConfig, ClusterEngine, DispatchPolicy};

    let detail_cfg = open_config();
    let solo = calibrate_benchmarks(
        detail_cfg.smt,
        detail_cfg.calibration_cycles,
        detail_cfg.seed,
    );
    let trace = arrival_trace(&detail_cfg, &solo);
    let mut fast_cfg = detail_cfg.clone();
    fast_cfg.fastsim = Some(FastSimPolicy::with_threshold(0.05));

    let run = |cfg: &OpenSystemConfig| {
        let ccfg = ClusterConfig::new(
            2,
            DispatchPolicy::Symbiosis,
            SchedulerKind::Sos,
            cfg.online(),
        );
        let mut engine = ClusterEngine::new(&ccfg);
        let done = run_cluster_on_trace(&mut engine, &trace, u64::MAX);
        let mean = done.iter().map(|j| j.response() as f64).sum::<f64>() / done.len().max(1) as f64;
        (done.len(), mean)
    };
    let (detail_n, detail_rt) = run(&detail_cfg);
    let (fast_n, fast_rt) = run(&fast_cfg);
    assert_eq!(detail_n, fast_n, "completion counts");
    let err = rel_err(fast_rt, detail_rt);
    assert!(
        err <= 0.02,
        "cluster fast mean response off by {:.2}% (> 2%)",
        err * 100.0
    );
}

#[test]
fn open_system_fast_engine_reports_policy_and_counters() {
    // The engine must echo the policy it runs and expose live counters —
    // what `sos-serve`'s metrics verb and the bench records publish.
    let mut cfg = open_config();
    cfg.num_jobs = 8;
    cfg.fastsim = Some(FastSimPolicy::default());
    let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
    let trace = arrival_trace(&cfg, &solo);
    let mut engine = OnlineEngine::new(SchedulerKind::Sos, &cfg.online());
    let mut done = 0usize;
    let mut next = 0usize;
    while done < trace.len() {
        while next < trace.len() && trace[next].arrival <= engine.now() {
            engine.submit(trace[next].clone());
            next += 1;
        }
        if engine.live_count() == 0 {
            engine.jump_to(trace[next].arrival);
            continue;
        }
        done += engine.step().len();
    }
    let policy = engine.fastsim_policy().expect("policy echoed");
    assert_eq!(policy, &FastSimPolicy::default());
    let counters = engine.fastsim_counters().expect("counters exposed");
    assert!(
        counters.detailed_slices > 0,
        "an open-system run always has detailed slices: {counters:?}"
    );
}

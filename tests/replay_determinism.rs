//! Deterministic-replay harness: the whole stack — engine, runner,
//! experiment protocol, telemetry — must be a pure function of its seeds.
//!
//! Each test runs the same configuration twice from scratch and demands
//! *byte-identical* serialized output, not merely approximately equal
//! numbers: a single nondeterministic counter (wall-clock timestamp, map
//! iteration order, uninitialized state carried across runs) shows up as a
//! diff here long before it would be visible in averaged results.

use smt_symbiosis::sos::runner::{RotationStats, Runner};
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::sos::sos::{SosConfig, SosScheduler};
use smt_symbiosis::sos::{telemetry, ExperimentSpec, JobPool};
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;
use std::sync::Mutex;

/// The telemetry recorder is process-wide and the test harness is
/// multi-threaded. Every test in this file takes the lock — including the
/// ones that do not read telemetry — so a run under test can never record
/// spans into a concurrent test's snapshot.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn seeded_runner(seed: u64) -> Runner {
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Fp),
            JobSpec::single(Benchmark::Mg),
            JobSpec::single(Benchmark::Gcc),
            JobSpec::single(Benchmark::Go),
        ],
        seed,
    );
    Runner::new(MachineConfig::alpha21264_like(2), pool, 4_000)
}

fn rotations_json(seed: u64) -> String {
    let mut r = seeded_runner(seed);
    let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
    let rots: Vec<RotationStats> = r.run_schedule(&s, 3);
    serde_json::to_string(&rots).expect("rotation stats serialize")
}

#[test]
fn rotation_stats_replay_byte_identical() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let a = rotations_json(7);
    let b = rotations_json(7);
    assert_eq!(a, b, "same seed must replay to identical rotation counters");
    // And a different seed actually changes the workload (the comparison
    // above is not vacuous).
    assert_ne!(a, rotations_json(8));
}

#[test]
fn experiment_report_replay_byte_identical() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let spec: ExperimentSpec = "Jsb(4,2,2)".parse().expect("valid spec");
    let cfg = SosConfig {
        cycle_scale: 20_000,
        calibration_cycles: 15_000,
        ..SosConfig::default()
    };
    let run = || {
        let report = SosScheduler::evaluate_experiment(&spec, &cfg);
        serde_json::to_string(&report).expect("report serializes")
    };
    assert_eq!(
        run(),
        run(),
        "same seed and spec must replay to an identical report"
    );
}

#[test]
fn telemetry_event_stream_replays_byte_identical() {
    let _guard = RECORDER_LOCK.lock().unwrap();
    let run = || {
        telemetry::reset();
        telemetry::enable();
        let mut r = seeded_runner(11);
        r.attach_telemetry();
        let s = Schedule::new(vec![0, 1, 2, 3], 2, 2);
        let _ = r.run_schedule(&s, 2);
        r.detach_telemetry();
        telemetry::disable();
        let snapshot = telemetry::drain();
        telemetry::reset();
        telemetry::events_to_jsonl(&snapshot.events)
    };
    let a = run();
    let b = run();
    assert!(
        !a.is_empty(),
        "an instrumented run must record telemetry events"
    );
    assert_eq!(
        a, b,
        "telemetry timestamps are simulated cycles, so the event stream must replay exactly"
    );
}

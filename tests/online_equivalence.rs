//! The online engine and the batch open-system driver are the same state
//! machine: feeding a fixed arrival trace through `OnlineEngine`'s public
//! submit/step/jump_to API must reproduce `run_open_system_on_trace`'s
//! per-job response times *exactly* (bit-identical clocks), for both
//! scheduling policies. This is what keeps `sos-serve` answers consistent
//! with the fig5/fig6 batch numbers.

use sos_core::online::{JobRecord, OnlineEngine, SchedulerKind};
use sos_core::opensys::{
    arrival_trace, calibrate_benchmarks, run_open_system_on_trace, OpenSystemConfig,
};

fn small_config() -> OpenSystemConfig {
    // Tiny cycle budget: this runs a debug-profile simulator twice per
    // policy. The equivalence claim is scale-independent.
    let mut cfg = OpenSystemConfig::scaled(2);
    cfg.mean_job_cycles = 60_000;
    cfg.mean_interarrival = 30_000;
    cfg.num_jobs = 10;
    cfg.calibration_cycles = 4_000;
    cfg.phased_fraction = 0.3;
    cfg.seed = 0xE0_17;
    cfg
}

fn drive_engine(kind: SchedulerKind, cfg: &OpenSystemConfig) -> Vec<JobRecord> {
    let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
    let trace = arrival_trace(cfg, &solo);
    let mut engine = OnlineEngine::new(kind, &cfg.online());
    let mut completed = Vec::new();
    let mut next = 0usize;
    while completed.len() < trace.len() {
        while next < trace.len() && trace[next].arrival <= engine.now() {
            engine.submit(trace[next].clone());
            next += 1;
        }
        if engine.live_count() == 0 {
            engine.jump_to(trace[next].arrival);
            continue;
        }
        completed.extend(engine.step());
    }
    completed
}

#[test]
fn engine_reproduces_batch_response_times_exactly() {
    let cfg = small_config();
    for kind in [SchedulerKind::Naive, SchedulerKind::Sos] {
        let batch = run_open_system_on_trace(
            kind,
            &cfg,
            &arrival_trace(
                &cfg,
                &calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed),
            ),
        );
        let online = drive_engine(kind, &cfg);

        assert_eq!(batch.completed.len(), online.len(), "{kind:?} job counts");
        for (b, o) in batch.completed.iter().zip(&online) {
            assert_eq!(
                (b.arrival.arrival, b.departure),
                (o.arrival.arrival, o.departure),
                "{kind:?}: batch and engine-driven clocks diverged"
            );
            assert_eq!(b.response(), o.response());
        }
    }
}

#[test]
fn engine_runs_are_deterministic() {
    // Two independent engines over the same trace agree job for job — the
    // determinism `sos-serve` snapshots and `sos-loadgen` replays rely on.
    let cfg = small_config();
    let a = drive_engine(SchedulerKind::Sos, &cfg);
    let b = drive_engine(SchedulerKind::Sos, &cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.departure, y.departure);
        assert_eq!(x.arrival.arrival, y.arrival.arrival);
    }
}

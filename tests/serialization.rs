//! Serde round-trips for the public data-structure types (C-SERDE): configs,
//! specs, samples, and results survive JSON serialization unchanged.

use smt_symbiosis::sos::opensys::{JobArrival, OpenSystemConfig};
use smt_symbiosis::sos::sample::ScheduleSample;
use smt_symbiosis::sos::schedule::{Coschedule, Schedule};
use smt_symbiosis::sos::sos::SosConfig;
use smt_symbiosis::sos::{ExperimentSpec, PredictorKind};
use smt_symbiosis::workloads::jobmix::SyncStyle;
use smt_symbiosis::workloads::{BenchProfile, Benchmark, JobSpec};
use smtsim::{ConflictCounters, MachineConfig, TimesliceStats};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn machine_config_round_trips() {
    let cfg = MachineConfig::alpha21264_like(4);
    assert_eq!(round_trip(&cfg), cfg);
}

#[test]
fn bench_profiles_round_trip() {
    for b in Benchmark::ALL {
        let p: BenchProfile = b.profile();
        assert_eq!(round_trip(&p), p, "{b}");
    }
}

#[test]
fn experiment_specs_round_trip() {
    for spec in ExperimentSpec::all_paper_experiments() {
        assert_eq!(round_trip(&spec), spec);
    }
}

#[test]
fn schedules_round_trip() {
    let s = Schedule::new(vec![3, 1, 4, 0, 2, 5], 3, 3);
    let back = round_trip(&s);
    assert_eq!(back, s);
    assert_eq!(back.paper_notation(), s.paper_notation());
    let c = Coschedule::new([2, 0, 1]);
    assert_eq!(round_trip(&c), c);
}

#[test]
fn samples_and_counters_round_trip() {
    let sample = ScheduleSample {
        notation: "012_345".into(),
        ipc: 3.2,
        allconf: 120.5,
        dcache: 97.5,
        fq: 9.6,
        fp: 31.6,
        sum2: 41.2,
        diversity: 0.18,
        balance: 0.1,
    };
    assert_eq!(round_trip(&sample), sample);
    let c = ConflictCounters {
        fp_queue: 7,
        int_units: 3,
        ..Default::default()
    };
    assert_eq!(round_trip(&c), c);
    let t = TimesliceStats {
        cycles: 5000,
        ..Default::default()
    };
    assert_eq!(round_trip(&t), t);
}

#[test]
fn configs_round_trip() {
    let sos = SosConfig {
        predictor: PredictorKind::Composite,
        ..SosConfig::default()
    };
    assert_eq!(round_trip(&sos), sos);
    let open = OpenSystemConfig::scaled(3);
    assert_eq!(round_trip(&open), open);
}

#[test]
fn job_specs_round_trip() {
    let specs = vec![
        JobSpec::single(Benchmark::Gcc),
        JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight),
        JobSpec::parallel(Benchmark::Ep, 3, SyncStyle::None),
    ];
    assert_eq!(round_trip(&specs), specs);
}

#[test]
fn arrivals_round_trip() {
    let a = JobArrival {
        arrival: 123,
        benchmark: Benchmark::Swim,
        instructions: 42_000,
        phased: false,
    };
    assert_eq!(round_trip(&a), a);
}

//! Integration tests for the cold-start effects behind §8's warmstart
//! scheduling: memory-system state persists across timeslices, flushing it
//! costs throughput, and longer residency amortizes warm-up.

use smt_symbiosis::sos::job::JobPool;
use smt_symbiosis::sos::runner::Runner;
use smt_symbiosis::sos::schedule::Coschedule;
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;

fn runner() -> Runner {
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Gcc),
            JobSpec::single(Benchmark::Mg),
        ],
        3,
    );
    Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000)
}

#[test]
fn flushing_the_memory_system_costs_throughput() {
    let mut r = runner();
    let tuple = Coschedule::new([0, 1]);
    // Warm up thoroughly.
    for _ in 0..8 {
        let _ = r.run_tuple(&tuple, 5_000);
    }
    let warm = r.run_tuple(&tuple, 5_000).total_committed();
    r.processor_mut().flush_memory_state();
    let cold = r.run_tuple(&tuple, 5_000).total_committed();
    assert!(
        cold < warm,
        "a cold memory system must slow the slice down: warm {warm} vs cold {cold}"
    );
}

#[test]
fn residency_amortizes_cold_start() {
    // Run the same total cycles as one long residency vs. many re-entries
    // with flushes in between (an exaggerated worst-case context switch).
    let mut long = runner();
    let tuple = Coschedule::new([0, 1]);
    let mut long_total = 0;
    for _ in 0..10 {
        long_total += long.run_tuple(&tuple, 5_000).total_committed();
    }

    let mut churn = runner();
    let mut churn_total = 0;
    for _ in 0..10 {
        churn.processor_mut().flush_memory_state();
        churn_total += churn.run_tuple(&tuple, 5_000).total_committed();
    }
    assert!(
        long_total > churn_total,
        "long residency must beat constant cold starts: {long_total} vs {churn_total}"
    );
}

#[test]
fn swap_one_keeps_survivors_warm() {
    // With swap-one, job 0 stays resident across consecutive slices; its
    // second slice should commit more than its first (warm caches), whereas
    // a full flush in between would reset it.
    let pool = JobPool::from_specs(
        &[
            JobSpec::single(Benchmark::Gcc),
            JobSpec::single(Benchmark::Mg),
            JobSpec::single(Benchmark::Wave),
        ],
        9,
    );
    let mut r = Runner::new(MachineConfig::alpha21264_like(2), pool, 5_000);
    let first = r.run_tuple(&Coschedule::new([0, 1]), 5_000);
    let second = r.run_tuple(&Coschedule::new([0, 2]), 5_000);
    let gcc_first = first.thread(smtsim::StreamId(0)).unwrap().committed;
    let gcc_second = second.thread(smtsim::StreamId(0)).unwrap().committed;
    assert!(
        gcc_second > gcc_first,
        "the resident job should speed up as it warms: {gcc_first} -> {gcc_second}"
    );
}

//! Golden test for request-scoped job tracing: a seeded 3-job run through
//! `OnlineEngine` with job spans enabled must produce a byte-identical
//! Chrome trace across reruns, with the full span tree per job
//! (admit → queue wait → schedule decision → timeslices → complete) on that
//! job's own track.
//!
//! This lives in its own integration-test binary because the telemetry
//! recorder is process-global: sharing a process with other telemetry tests
//! would interleave their events into the trace under test.

use sos_core::online::{OnlineConfig, OnlineEngine, SchedulerKind};
use sos_core::opensys::JobArrival;
use sos_core::telemetry;
use sos_core::PredictorKind;
use workloads::spec::Benchmark;

/// Runs the seeded 3-job scenario with job spans on and returns the Chrome
/// trace JSON.
fn traced_run() -> String {
    telemetry::reset();
    telemetry::enable();
    let cfg = OnlineConfig {
        smt: 2,
        timeslice: 2_000,
        sample_schedules: 2,
        predictor: PredictorKind::Ipc,
        drift_threshold: None,
        base_interval: 20_000,
        seed: 7,
        fastsim: None,
        learn: None,
    };
    let mut engine = OnlineEngine::new(SchedulerKind::Sos, &cfg);
    engine.set_job_spans(true);
    let jobs = [
        (Benchmark::Gcc, 40_000, false),
        (Benchmark::Mg, 30_000, true),
        (Benchmark::Swim, 20_000, false),
    ];
    for (benchmark, instructions, phased) in jobs {
        engine.submit(JobArrival {
            arrival: engine.now(),
            benchmark,
            instructions,
            phased,
        });
    }
    let mut safety = 0;
    while engine.live_count() > 0 {
        engine.step();
        safety += 1;
        assert!(safety < 100_000, "run did not terminate");
    }
    let snap = telemetry::global().drain();
    telemetry::disable();
    snap.chrome_trace_json()
}

#[test]
fn job_span_trace_is_byte_identical_across_reruns() {
    let first = traced_run();
    let second = traced_run();
    assert_eq!(first, second, "job-span trace must be deterministic");
}

#[test]
fn job_span_trace_contains_full_span_tree_per_job() {
    let trace = traced_run();

    // Each job gets its own named track (the exporter pretty-prints, so
    // needles use the `"key": "value"` form).
    for key in 0..3 {
        let track = format!("\"name\": \"job/{key}\"");
        assert!(
            trace.contains(&track),
            "missing thread_name metadata for job/{key}"
        );
    }

    // The lifecycle events appear once per job (B/E spans render the name in
    // both the begin and end record, so lifetime and queue_wait count 2×).
    for (needle, expected) in [
        ("\"name\": \"job.lifetime\"", 6),
        ("\"name\": \"job.queue_wait\"", 6),
        ("\"name\": \"job.admit\"", 3),
        ("\"name\": \"job.schedule_decision\"", 3),
        ("\"name\": \"job.complete\"", 3),
    ] {
        assert_eq!(
            trace.matches(needle).count(),
            expected,
            "unexpected count of {needle}"
        );
    }

    // Every job simulated at least one timeslice span (B and E balance, so
    // 3 jobs contribute at least 3 B/E pairs = 6 name occurrences).
    let slices = trace.matches("\"name\": \"job.timeslice\"").count();
    assert!(
        slices >= 6,
        "expected >=3 timeslice B/E pairs, saw {slices}"
    );

    // Schedule decisions carry the scheduling mode and the queue wait.
    assert!(trace.contains("\"mode\":"));
    assert!(trace.contains("\"wait_cycles\":"));
}

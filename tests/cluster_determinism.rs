//! The cluster determinism suite of the two-level scheduler
//! (`sos_core::cluster`):
//!
//! 1. same seed + shard count ⇒ byte-identical per-shard traces and
//!    cluster report (serialized JSON compared as bytes);
//! 2. a 1-shard cluster is bit-exact with a plain `OnlineEngine` driven by
//!    the canonical open-system loop;
//! 3. migration conserves jobs: under forced stealing nothing is lost or
//!    duplicated, and every departed job matches a submitted one.

use sos_core::cluster::{run_cluster_on_trace, ClusterConfig, ClusterEngine, DispatchPolicy};
use sos_core::online::{JobRecord, OnlineEngine, SchedulerKind};
use sos_core::opensys::{arrival_trace, calibrate_benchmarks, JobArrival, OpenSystemConfig};

fn small_config() -> OpenSystemConfig {
    // Tiny cycle budget: the suite runs several debug-profile cluster
    // simulations. The determinism claims are scale-independent.
    let mut cfg = OpenSystemConfig::scaled(2);
    cfg.mean_job_cycles = 60_000;
    cfg.mean_interarrival = 30_000;
    cfg.num_jobs = 16;
    cfg.calibration_cycles = 4_000;
    cfg.phased_fraction = 0.3;
    cfg.seed = 0xC1_05;
    cfg
}

fn small_trace(cfg: &OpenSystemConfig) -> Vec<JobArrival> {
    let solo = calibrate_benchmarks(cfg.smt, cfg.calibration_cycles, cfg.seed);
    arrival_trace(cfg, &solo)
}

fn cluster_config(cfg: &OpenSystemConfig, shards: usize) -> ClusterConfig {
    ClusterConfig::new(
        shards,
        DispatchPolicy::Symbiosis,
        SchedulerKind::Sos,
        cfg.online(),
    )
}

#[test]
fn seeded_cluster_runs_are_byte_identical() {
    let cfg = small_config();
    let trace = small_trace(&cfg);
    let mut reports = Vec::new();
    for _ in 0..2 {
        let ccfg = cluster_config(&cfg, 4);
        let mut engine = ClusterEngine::new(&ccfg);
        let done = run_cluster_on_trace(&mut engine, &trace, u64::MAX);
        assert_eq!(done.len(), trace.len());
        // The report is wall-clock-free by construction, so two runs of
        // the same (seed, shard count) must serialize to identical bytes —
        // including every shard's full departure trace.
        reports.push(serde_json::to_string(&engine.report()).expect("serialize"));
    }
    assert_eq!(
        reports[0], reports[1],
        "same seed + shard count must be byte-reproducible"
    );
}

#[test]
fn different_shard_seeds_differ() {
    // Shard seeding is cluster seed ⊕ shard id: the report records it, and
    // distinct shards must not share an RNG stream.
    let cfg = small_config();
    let ccfg = cluster_config(&cfg, 3);
    let mut engine = ClusterEngine::new(&ccfg);
    let report = engine.report();
    let seeds: Vec<u64> = report.per_shard.iter().map(|s| s.seed).collect();
    assert_eq!(seeds.len(), 3);
    assert_eq!(seeds[0], cfg.seed); // shard 0 keeps the cluster seed
    for (i, s) in seeds.iter().enumerate() {
        assert_eq!(*s, cfg.seed ^ i as u64);
    }
}

#[test]
fn one_shard_cluster_is_bit_exact_with_plain_engine() {
    let cfg = small_config();
    let trace = small_trace(&cfg);

    // Plain engine under the canonical open-system loop.
    let mut engine = OnlineEngine::new(SchedulerKind::Sos, &cfg.online());
    let mut plain: Vec<JobRecord> = Vec::new();
    let mut next = 0usize;
    while plain.len() < trace.len() {
        while next < trace.len() && trace[next].arrival <= engine.now() {
            engine.submit(trace[next].clone());
            next += 1;
        }
        if engine.live_count() == 0 {
            engine.jump_to(trace[next].arrival);
            continue;
        }
        plain.extend(engine.step());
    }

    // 1-shard cluster over the identical trace. slices_per_round = 1 makes
    // the round structure step-for-step identical; with one shard every
    // dispatch policy routes every job to shard 0 and rebalancing can
    // never fire.
    let mut ccfg = cluster_config(&cfg, 1);
    ccfg.slices_per_round = 1;
    let mut cluster = ClusterEngine::new(&ccfg);
    let clustered = run_cluster_on_trace(&mut cluster, &trace, u64::MAX);

    assert_eq!(plain.len(), clustered.len(), "job counts");
    for (p, c) in plain.iter().zip(&clustered) {
        assert_eq!(
            (p.arrival.arrival, p.departure),
            (c.arrival.arrival, c.departure),
            "1-shard cluster diverged from the plain engine"
        );
    }
    assert_eq!(cluster.migrations(), 0);
}

#[test]
fn forced_stealing_conserves_jobs() {
    let cfg = small_config();
    let trace = small_trace(&cfg);

    // Round-robin dispatch keeps job *counts* equal, so a single burst
    // never opens a depth gap. Instead: burst A pins shard 0 with two
    // long jobs (round-robin slots 0 and 4) while shards 1–3 drain their
    // short ones; burst B then piles fresh — still unstarted — work onto
    // every shard, leaving shard 0 deepest. With the most aggressive
    // steal settings the gap forces reclaim + re-dispatch.
    let mut ccfg = ClusterConfig::new(
        4,
        DispatchPolicy::RoundRobin,
        SchedulerKind::Naive,
        cfg.online(),
    );
    ccfg.rebalance_every = 1;
    ccfg.steal_threshold = 2;
    ccfg.slices_per_round = 1;
    let mut engine = ClusterEngine::new(&ccfg);

    let mut submitted = Vec::new();
    let mut submit = |engine: &mut ClusterEngine, mut j: JobArrival, now: u64, stretch: u64| {
        j.arrival = now;
        j.instructions *= stretch;
        submitted.push(j.clone());
        engine.submit(j);
    };

    // Burst A: 8 jobs, two per shard; shard 0's two are 20× longer.
    for (i, job) in trace.iter().take(8).enumerate() {
        let stretch = if i % 4 == 0 { 20 } else { 1 };
        submit(&mut engine, job.clone(), 0, stretch);
    }
    // Run until shards 1–3 are empty but shard 0 still holds its long jobs.
    let mut done: Vec<JobRecord> = Vec::new();
    for _ in 0..1_000_000u64 {
        if engine.shard_depths()[1..].iter().all(|&d| d == 0) {
            break;
        }
        done.extend(engine.step());
    }
    assert!(
        engine.shard_depths()[0] > 0,
        "shard 0's long jobs must outlive the others' short ones"
    );

    // Burst B: 16 fresh jobs, four per shard — shard 0 is now deepest and
    // its newest jobs have never run, so the next rebalance steals.
    let now = engine.now();
    for job in trace.iter().cycle().take(16) {
        submit(&mut engine, job.clone(), now, 1);
    }
    done.extend(engine.drain(u64::MAX));

    assert!(
        engine.migrations() > 0,
        "aggressive stealing settings must trigger at least one migration"
    );
    assert_eq!(done.len(), submitted.len(), "no job lost or duplicated");
    assert_eq!(engine.completed() as usize, submitted.len());

    // Every departed job corresponds 1:1 to a submitted arrival record
    // (compare as sorted multisets of the identifying fields).
    let key = |a: &JobArrival| {
        (
            a.arrival,
            format!("{:?}", a.benchmark),
            a.instructions,
            a.phased,
        )
    };
    let mut want: Vec<_> = submitted.iter().map(&key).collect();
    let mut got: Vec<_> = done.iter().map(|r| key(&r.arrival)).collect();
    want.sort();
    got.sort();
    assert_eq!(want, got, "migration altered a job's identity");

    // Mirror accounting agrees with itself.
    let report = engine.report();
    let migrated_in: usize = report.per_shard.iter().map(|s| s.migrated_in).sum();
    let migrated_out: usize = report.per_shard.iter().map(|s| s.migrated_out).sum();
    assert_eq!(migrated_in, migrated_out);
    assert_eq!(report.migrations as usize, migrated_in);
    let per_shard_completed: u64 = report.per_shard.iter().map(|s| s.completed).sum();
    assert_eq!(per_shard_completed, report.completed);
}

//! Property-based tests (proptest) on the core data structures and
//! invariants, exercised through the public API.

use proptest::prelude::*;
use smt_symbiosis::sos::enumerate::{count_distinct, random_schedule};
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::sos::ws::{weighted_speedup, SoloRates};
use smt_symbiosis::workloads::SyntheticStream;
use smtsim::cache::Cache;
use smtsim::trace::{Fetch, InstructionSource, StreamId};
use smtsim::CacheConfig;

/// A valid (x, y, z) experiment shape using one of the paper's swap
/// disciplines: swap-all (z == y) or swap-one (z == 1).
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (2usize..10).prop_flat_map(|x| {
        (1usize..=x).prop_flat_map(move |y| prop_oneof![Just((x, y, y)), Just((x, y, 1))])
    })
}

proptest! {
    #[test]
    fn schedules_are_always_fair_coverings((x, y, z) in shape(), seed in any::<u64>()) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let s = random_schedule(x, y, z, &mut rng);
        prop_assert!(s.is_fair_covering());
        // Every tuple has exactly min(y, x) threads.
        for t in s.tuples() {
            prop_assert_eq!(t.len(), y.min(x));
        }
    }

    #[test]
    fn canonical_key_is_invariant_under_z_rotations_and_reflection(
        (x, y, z) in shape(),
        rot in 0usize..10,
        reflect in any::<bool>(),
    ) {
        // Rotating the circular order by a multiple of z maps coschedules to
        // coschedules; so does reversing it (for fair shapes).
        let order: Vec<usize> = (0..x).collect();
        let mut other = order.clone();
        other.rotate_left((rot * z) % x);
        if reflect {
            other.reverse();
        }
        let a = Schedule::new(order, y, z);
        let b = Schedule::new(other, y, z);
        prop_assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn distinct_count_is_positive_and_one_when_everyone_fits(
        (x, y, z) in shape(),
    ) {
        let n = count_distinct(x, y, z);
        prop_assert!(n >= 1);
        if y == x {
            prop_assert_eq!(n, 1);
        }
    }

    #[test]
    fn ws_is_scale_invariant_in_time(
        rates in proptest::collection::vec(0.1f64..4.0, 1..6),
        committed in proptest::collection::vec(0u64..100_000, 1..6),
        k in 1u64..8,
    ) {
        let n = rates.len().min(committed.len());
        let solo = SoloRates::new(rates[..n].to_vec());
        let c = &committed[..n];
        let base = weighted_speedup(c, 1_000_000, &solo);
        // k× the cycles and k× the work leave WS unchanged.
        let scaled: Vec<u64> = c.iter().map(|x| x * k).collect();
        let scaled_ws = weighted_speedup(&scaled, 1_000_000 * k, &solo);
        prop_assert!((base - scaled_ws).abs() < 1e-9);
    }

    #[test]
    fn ws_is_monotone_in_progress(
        rates in proptest::collection::vec(0.1f64..4.0, 2..5),
        bump in 1u64..50_000,
    ) {
        let solo = SoloRates::new(rates.clone());
        let base: Vec<u64> = rates.iter().map(|_| 10_000).collect();
        let mut more = base.clone();
        more[0] += bump;
        let a = weighted_speedup(&base, 100_000, &solo);
        let b = weighted_speedup(&more, 100_000, &solo);
        prop_assert!(b > a);
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(addrs in proptest::collection::vec(any::<u64>(), 1..500)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 64, assoc: 2, hit_latency: 1 });
        for a in addrs {
            c.access(a);
            prop_assert!(c.resident_lines() <= c.capacity_lines());
        }
    }

    #[test]
    fn cache_hits_after_access(addr in any::<u64>()) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, assoc: 2, hit_latency: 1 });
        c.access(addr);
        prop_assert!(c.probe(addr));
        prop_assert!(c.access(addr));
    }

    #[test]
    fn synthetic_streams_are_deterministic_functions_of_seed(
        seed in any::<u64>(),
        n in 1usize..2_000,
    ) {
        let profile = smt_symbiosis::workloads::Benchmark::Gcc.profile();
        let mut a = SyntheticStream::new(profile.clone(), StreamId(3), seed);
        let mut b = SyntheticStream::new(profile, StreamId(3), seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn limited_streams_produce_exactly_their_limit(limit in 1u64..3_000) {
        let profile = smt_symbiosis::workloads::Benchmark::Ep.profile();
        let mut s = SyntheticStream::new(profile, StreamId(1), 9).with_limit(limit);
        let mut produced = 0u64;
        loop {
            match s.next_instr() {
                Fetch::Instr(_) => produced += 1,
                Fetch::Finished => break,
                Fetch::Blocked => unreachable!("synthetic streams never block"),
            }
            prop_assert!(produced <= limit);
        }
        prop_assert_eq!(produced, limit);
    }
}

use rand::SeedableRng;

//! Property-based invariants of the simulator when driven by arbitrary
//! benchmark models: conservation laws the hardware counters must obey no
//! matter the workload.

use proptest::prelude::*;
use smt_symbiosis::workloads::{Benchmark, SyntheticStream};
use smtsim::counters::Resource;
use smtsim::trace::StreamId;
use smtsim::{MachineConfig, Processor};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn counters_obey_conservation_laws(
        benches in proptest::collection::vec(any_benchmark(), 1..4),
        seed in any::<u64>(),
        cycles in 2_000u64..8_000,
    ) {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(benches.len()));
        let mut streams: Vec<SyntheticStream> = benches
            .iter()
            .enumerate()
            .map(|(i, b)| SyntheticStream::new(b.profile(), StreamId(i as u64), seed ^ i as u64))
            .collect();
        let mut refs: Vec<&mut dyn smtsim::trace::InstructionSource> =
            streams.iter_mut().map(|s| s as _).collect();
        let stats = cpu.run_timeslice(&mut refs, cycles);

        // Clock accounting.
        prop_assert_eq!(stats.cycles, cycles);
        // Per-resource conflicts are cycle-counts: at most one per cycle.
        for r in Resource::ALL {
            prop_assert!(stats.conflicts.get(r) <= cycles, "{r}");
        }
        for t in &stats.threads {
            // Commits never exceed fetches; class counts sum to commits.
            prop_assert!(t.committed <= t.fetched, "{t:?}");
            let class_sum: u64 = t.class_counts.iter().sum();
            prop_assert_eq!(class_sum, t.committed);
            // A thread cannot commit more than the machine width allows.
            prop_assert!(t.committed <= cycles * 8);
        }
        // Cache hierarchy: misses never exceed references; L2 references are
        // exactly the L1 misses (no other L2 clients in this model).
        prop_assert!(stats.cache.dl1_misses <= stats.cache.dl1_refs);
        prop_assert!(stats.cache.il1_misses <= stats.cache.il1_refs);
        prop_assert!(stats.cache.l2_misses <= stats.cache.l2_refs);
        prop_assert_eq!(stats.cache.l2_refs, stats.cache.dl1_misses + stats.cache.il1_misses);
        // TLB and branch counters.
        prop_assert!(stats.dtlb.misses <= stats.dtlb.refs);
        prop_assert!(stats.itlb.misses <= stats.itlb.refs);
        prop_assert!(stats.branches.mispredicted <= stats.branches.predicted);
    }

    /// The full `sim-check` law set — including the per-thread-to-hierarchy
    /// cache-counter sums the hand-written assertions above don't cover.
    /// (The per-thread/global dl1 agreement here is what exposed the DTLB
    /// refill being booked as a data-cache miss.)
    #[test]
    fn check_timeslice_accepts_arbitrary_workloads(
        benches in proptest::collection::vec(any_benchmark(), 1..4),
        seed in any::<u64>(),
        cycles in 2_000u64..8_000,
    ) {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(benches.len()));
        let mut streams: Vec<SyntheticStream> = benches
            .iter()
            .enumerate()
            .map(|(i, b)| SyntheticStream::new(b.profile(), StreamId(i as u64), seed ^ i as u64))
            .collect();
        let mut refs: Vec<&mut dyn smtsim::trace::InstructionSource> =
            streams.iter_mut().map(|s| s as _).collect();
        let stats = cpu.run_timeslice(&mut refs, cycles);
        if let Err(v) = smtsim::invariants::check_timeslice(&stats) {
            prop_assert!(false, "{v}");
        }
    }

    #[test]
    fn simulation_is_a_pure_function_of_inputs(
        bench in any_benchmark(),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut cpu = Processor::new(MachineConfig::alpha21264_like(1));
            let mut s = SyntheticStream::new(bench.profile(), StreamId(0), seed);
            let mut refs: Vec<&mut dyn smtsim::trace::InstructionSource> = vec![&mut s];
            cpu.run_timeslice(&mut refs, 3_000)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn adding_a_thread_never_reduces_total_throughput_to_zero(
        a in any_benchmark(),
        b in any_benchmark(),
        seed in any::<u64>(),
    ) {
        let mut cpu = Processor::new(MachineConfig::alpha21264_like(2));
        let mut s1 = SyntheticStream::new(a.profile(), StreamId(0), seed);
        let mut s2 = SyntheticStream::new(b.profile(), StreamId(1), seed ^ 1);
        let mut refs: Vec<&mut dyn smtsim::trace::InstructionSource> = vec![&mut s1, &mut s2];
        let stats = cpu.run_timeslice(&mut refs, 6_000);
        prop_assert!(stats.total_committed() > 0);
        // Both threads make progress under the fair ICOUNT policy.
        for t in &stats.threads {
            prop_assert!(t.fetched > 0, "{t:?}");
        }
    }
}

//! Integration tests for parallel (multithreaded) jobs: the §6 coscheduling
//! pathology end to end.

use smt_symbiosis::sos::job::JobPool;
use smt_symbiosis::sos::runner::Runner;
use smt_symbiosis::sos::schedule::Schedule;
use smt_symbiosis::workloads::jobmix::SyncStyle;
use smt_symbiosis::workloads::{Benchmark, JobSpec};
use smtsim::MachineConfig;

/// Pool: the two threads of a tight-sync ARRAY plus two single-threaded jobs.
fn pool(sync: SyncStyle) -> JobPool {
    JobPool::from_specs(
        &[
            JobSpec::parallel(Benchmark::Array, 2, sync), // threads 0, 1
            JobSpec::single(Benchmark::Fp),               // thread 2
            JobSpec::single(Benchmark::Gcc),              // thread 3
        ],
        21,
    )
}

fn array_progress(schedule: &Schedule, sync: SyncStyle) -> u64 {
    let mut runner = Runner::new(MachineConfig::alpha21264_like(2), pool(sync), 5_000);
    let rots = runner.run_schedule(schedule, 10);
    let mut total = 0;
    for rot in &rots {
        let per = rot.committed_per_thread(4);
        total += per[0] + per[1];
    }
    total
}

#[test]
fn tight_sync_array_needs_coscheduling() {
    // Schedule pairing the ARRAY siblings (01_23) vs one splitting them
    // (02_13).
    let paired = Schedule::new(vec![0, 1, 2, 3], 2, 2);
    let split = Schedule::new(vec![0, 2, 1, 3], 2, 2);
    let paired_progress = array_progress(&paired, SyncStyle::Tight);
    let split_progress = array_progress(&split, SyncStyle::Tight);
    assert!(
        paired_progress > 5 * split_progress.max(1),
        "splitting a tightly-synchronizing job must be catastrophic: {paired_progress} vs {split_progress}"
    );
}

#[test]
fn loose_sync_array_tolerates_splitting() {
    let paired = Schedule::new(vec![0, 1, 2, 3], 2, 2);
    let split = Schedule::new(vec![0, 2, 1, 3], 2, 2);
    let paired_progress = array_progress(&paired, SyncStyle::Loose);
    let split_progress = array_progress(&split, SyncStyle::Loose);
    // Within a factor of two either way: splitting is no longer fatal.
    assert!(
        split_progress * 2 > paired_progress,
        "loose sync should tolerate splitting: {paired_progress} vs {split_progress}"
    );
}

#[test]
fn split_tight_array_reports_blocked_cycles() {
    let split = Schedule::new(vec![0, 2, 1, 3], 2, 2);
    let mut runner = Runner::new(
        MachineConfig::alpha21264_like(2),
        pool(SyncStyle::Tight),
        5_000,
    );
    let rots = runner.run_schedule(&split, 5);
    let blocked: u64 = rots
        .iter()
        .flat_map(|r| r.slices.iter())
        .flat_map(|s| s.threads.iter())
        .map(|t| t.blocked_cycles)
        .sum();
    assert!(blocked > 0, "the starved sibling must report blocking");
}

#[test]
fn hierarchical_allocation_changes_array_throughput() {
    // ARRAY with 2 threads on a 2-context machine finishes work faster than
    // ARRAY restricted to 1 thread (it is a parallel program).
    use smt_symbiosis::sos::schedule::Coschedule;
    let mut two = Runner::new(
        MachineConfig::alpha21264_like(2),
        JobPool::from_specs(
            &[JobSpec::parallel(Benchmark::Array, 2, SyncStyle::Tight)],
            5,
        ),
        5_000,
    );
    let both = Coschedule::new([0, 1]);
    let _ = two.run_tuple(&both, 20_000);
    let stats2 = two.run_tuple(&both, 50_000);
    let agg2 = stats2.total_committed();

    let mut one = Runner::new(
        MachineConfig::alpha21264_like(2),
        JobPool::from_specs(
            &[JobSpec::parallel(Benchmark::Array, 1, SyncStyle::Tight)],
            5,
        ),
        5_000,
    );
    let solo_tuple = Coschedule::new([0]);
    let _ = one.run_tuple(&solo_tuple, 20_000);
    let stats1 = one.run_tuple(&solo_tuple, 50_000);
    let agg1 = stats1.total_committed();

    assert!(
        agg2 as f64 > 1.3 * agg1 as f64,
        "two ARRAY threads should outrun one: {agg2} vs {agg1}"
    );
}
